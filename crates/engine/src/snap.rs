//! Binary snapshot (checkpoint/restore) support.
//!
//! DIABLO's FPGA platform pays cluster warm-up once and then explores
//! parameter variations at hardware speed; the software reproduction gets
//! the same economy by serializing the *entire* deterministic simulation
//! state — event queues, per-component sequence counters, every
//! component's mutable state — into a versioned binary snapshot that
//! restores bit-identically. Two traits split the work:
//!
//! * [`Snap`] — value-oriented serialization for plain data (integers,
//!   times, RNG states, containers). `save`/`load` round-trip a value
//!   exactly; the format is little-endian, length-prefixed, and free of
//!   any platform- or allocation-dependent detail.
//! * [`Persist`] — object-safe, *in-place* state overwrite for trait
//!   objects (components, guest processes). `load_state` overwrites only
//!   the listed *state* fields of an already-constructed object;
//!   configuration fields are rebuilt from the experiment spec by the
//!   restore path and deliberately stay out of the snapshot, which is
//!   what lets a sweep restore one warmed checkpoint under many
//!   parameter variations.
//!
//! # What is deliberately not serialized
//!
//! * Configuration (topology shape, profiles, rate plans) — rebuilt from
//!   the experiment spec; the snapshot carries a structural fingerprint
//!   so a mismatched spec is rejected instead of silently diverging.
//! * Flight-recorder rings — they hold `&'static str` trace labels and
//!   are diagnostic-only; checkpointed runs must not enable tracing.
//! * Executor scheduling state (worker pools, lanes, barriers) — results
//!   are executor-independent, so a serial snapshot restores into a
//!   partition-parallel host and vice versa.
//!
//! Maps and sets are serialized with sorted keys so the byte stream is a
//! pure function of model state, never of hash seeds or insertion order.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Snapshot format errors: truncated input, unknown enum tags, or header
/// mismatches (magic, version, configuration fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the value was complete.
    Eof,
    /// An enum tag byte had no matching variant.
    Tag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A structural invariant failed (bad magic, impossible length, a
    /// count that disagrees with the restored model).
    Malformed(String),
    /// The snapshot was written by an incompatible format version.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The snapshot's structural fingerprint does not match the model it
    /// is being restored into (different topology, component count, or
    /// workload shape).
    Fingerprint {
        /// Fingerprint recorded in the snapshot header.
        found: u64,
        /// Fingerprint of the model being restored into.
        expected: u64,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Eof => write!(f, "snapshot truncated"),
            SnapError::Tag { what, tag } => write!(f, "invalid {what} tag {tag}"),
            SnapError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapError::Version { found, expected } => {
                write!(f, "snapshot version {found} unsupported (expected {expected})")
            }
            SnapError::Fingerprint { found, expected } => write!(
                f,
                "snapshot fingerprint {found:#018x} does not match this configuration \
                 ({expected:#018x}); restore requires the same structural spec it was saved from"
            ),
        }
    }
}

impl std::error::Error for SnapError {}

/// Little-endian binary snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length as `u64`.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends a length-prefixed sub-blob (used for per-component state so
    /// a reader can skip or validate blob boundaries).
    pub fn put_blob(&mut self, blob: &[u8]) {
        self.put_len(blob.len());
        self.put_bytes(blob);
    }
}

/// Little-endian binary snapshot decoder over a borrowed byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on a truncated stream.
    pub fn take_u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a collection length, bounded by the remaining byte count so a
    /// corrupt length cannot trigger an enormous allocation.
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] on truncation, [`SnapError::Malformed`] when the
    /// length exceeds what the stream could possibly hold.
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let n = self.take_u64()?;
        if n > self.buf.len() as u64 {
            return Err(SnapError::Malformed(format!(
                "length {n} exceeds snapshot size {}",
                self.buf.len()
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed sub-blob written by [`SnapWriter::put_blob`].
    ///
    /// # Errors
    ///
    /// [`SnapError::Eof`] / [`SnapError::Malformed`] on truncation.
    pub fn take_blob(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.take_len()?;
        self.take_bytes(n)
    }
}

/// Value-oriented exact serialization. See the module docs for the split
/// between [`Snap`] (values) and [`Persist`] (in-place trait objects).
pub trait Snap: Sized {
    /// Encodes `self` into the writer.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes a value written by [`Snap::save`].
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on a truncated, corrupt, or mismatched stream.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// Object-safe in-place snapshot hook for trait objects (components and
/// guest processes). `load_state` overwrites the object's *state* fields;
/// configuration fields are rebuilt from the spec and left untouched.
pub trait Persist {
    /// Appends this object's mutable state to the writer.
    fn save_state(&self, w: &mut SnapWriter);
    /// Overwrites this object's mutable state from the reader.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`] on a truncated or corrupt stream.
    fn load_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

macro_rules! snap_int {
    ($($ty:ty),*) => {$(
        impl Snap for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let b = r.take_bytes(core::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(b.try_into().expect("sized int")))
            }
        }
    )*};
}

snap_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl Snap for usize {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let v = r.take_u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed(format!("usize overflow: {v}")))
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.put_bytes(&[u8::from(*self)]);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_bytes(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapError::Tag { what: "bool", tag: t as u64 }),
        }
    }
}

impl Snap for f64 {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.to_bits());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.take_u64()?))
    }
}

impl Snap for () {
    fn save(&self, _w: &mut SnapWriter) {}
    fn load(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.put_blob(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let b = r.take_blob()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapError::Malformed("non-UTF-8 string".to_string()))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => false.save(w),
            Some(v) => {
                true.save(w);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(if bool::load(r)? { Some(T::load(r)?) } else { None })
    }
}

impl<T: Snap> Snap for Box<T> {
    fn save(&self, w: &mut SnapWriter) {
        (**self).save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Box::new(T::load(r)?))
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Vec::<T>::load(r)?.into())
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into().map_err(|_| SnapError::Eof)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord> Snap for BTreeSet<K> {
    fn save(&self, w: &mut SnapWriter) {
        w.put_len(self.len());
        for k in self {
            k.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(K::load(r)?);
        }
        Ok(out)
    }
}

/// Hash maps are written with *sorted* keys so the byte stream depends
/// only on contents, never on hasher state or insertion order.
impl<K: Snap + Ord + Hash + Eq, V: Snap> Snap for HashMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            k.save(w);
            self[k].save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = HashMap::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord + Hash + Eq> Snap for HashSet<K> {
    fn save(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.iter().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for k in keys {
            k.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.take_len()?;
        let mut out = HashSet::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.insert(K::load(r)?);
        }
        Ok(out)
    }
}

impl Snap for crate::time::SimTime {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_picos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::SimTime::from_picos(r.take_u64()?))
    }
}

impl Snap for crate::time::SimDuration {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.as_picos());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::SimDuration::from_picos(r.take_u64()?))
    }
}

impl Snap for crate::time::Frequency {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.hz());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::time::Frequency::from_hz(r.take_u64()?))
    }
}

impl Snap for crate::time::Bandwidth {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.bits_per_sec());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.take_u64()? {
            0 => Err(SnapError::Malformed("Bandwidth: zero bits/s".into())),
            bps => Ok(crate::time::Bandwidth::from_bps(bps)),
        }
    }
}

impl Snap for crate::event::ComponentId {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::event::ComponentId(u32::load(r)?))
    }
}

impl Snap for crate::event::PortNo {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::event::PortNo(u16::load(r)?))
    }
}

impl Snap for crate::rng::DetRng {
    fn save(&self, w: &mut SnapWriter) {
        self.state().save(w);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::rng::DetRng::from_state(<[u64; 4]>::load(r)?))
    }
}

impl Snap for crate::stats::Counter {
    fn save(&self, w: &mut SnapWriter) {
        w.put_u64(self.get());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut c = crate::stats::Counter::new();
        c.add(r.take_u64()?);
        Ok(c)
    }
}

/// Implements [`Snap`] for a struct by listing *every* field.
///
/// ```
/// use diablo_engine::impl_snap_struct;
/// #[derive(Debug, PartialEq)]
/// struct P { x: u64, y: Option<u32> }
/// impl_snap_struct!(P { x, y });
/// ```
#[macro_export]
macro_rules! impl_snap_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::snap::Snap for $ty {
            fn save(&self, w: &mut $crate::snap::SnapWriter) {
                $($crate::snap::Snap::save(&self.$field, w);)*
            }
            fn load(
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<Self, $crate::snap::SnapError> {
                Ok(Self { $($field: $crate::snap::Snap::load(r)?,)* })
            }
        }
    };
}

/// Implements [`Persist`] for a type by listing its *state* fields (the
/// ones a snapshot overwrites in place); configuration fields are simply
/// omitted and keep the values the restore path rebuilt them with.
#[macro_export]
macro_rules! impl_persist_fields {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::snap::Persist for $ty {
            fn save_state(&self, w: &mut $crate::snap::SnapWriter) {
                $($crate::snap::Snap::save(&self.$field, w);)*
            }
            fn load_state(
                &mut self,
                r: &mut $crate::snap::SnapReader<'_>,
            ) -> Result<(), $crate::snap::SnapError> {
                $(self.$field = $crate::snap::Snap::load(r)?;)*
                Ok(())
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::time::{SimDuration, SimTime};

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::load(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0, "trailing bytes after load");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xDEAD_BEEF_u64);
        round_trip(u128::MAX - 7);
        round_trip(-42i64);
        round_trip(true);
        round_trip(3.25f64);
        round_trip("snapshot".to_string());
        round_trip(SimTime::from_picos(123_456_789));
        round_trip(SimDuration::from_picos(987));
        round_trip(Some((1u64, 2u32)));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip(VecDeque::from(vec![9u64, 8]));
        round_trip([5u64, 6, 7]);
    }

    #[test]
    fn containers_round_trip_sorted() {
        let mut m = HashMap::new();
        m.insert(9u64, "nine".to_string());
        m.insert(1u64, "one".to_string());
        let mut w1 = SnapWriter::new();
        m.save(&mut w1);
        // Same contents inserted in the opposite order must serialize
        // byte-identically (sorted keys).
        let mut m2 = HashMap::new();
        m2.insert(1u64, "one".to_string());
        m2.insert(9u64, "nine".to_string());
        let mut w2 = SnapWriter::new();
        m2.save(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
        round_trip(m);
        round_trip(HashSet::from([3u64, 1, 2]));
        round_trip(BTreeMap::from([(1u64, 2u64), (3, 4)]));
        round_trip(BTreeSet::from([1u64, 5]));
    }

    #[test]
    fn rng_round_trip_preserves_sequence() {
        let mut rng = DetRng::new(42);
        let _ = rng.next_u64();
        let mut w = SnapWriter::new();
        rng.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = DetRng::load(&mut SnapReader::new(&bytes)).unwrap();
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 1]);
        assert_eq!(Vec::<u64>::load(&mut r), Err(SnapError::Eof));
    }

    #[test]
    fn corrupt_length_is_rejected_without_allocating() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(Vec::<u64>::load(&mut r), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut r = SnapReader::new(&[7]);
        assert_eq!(bool::load(&mut r), Err(SnapError::Tag { what: "bool", tag: 7 }));
    }

    struct Widget {
        tunable: u64,
        count: u64,
        log: Vec<u64>,
    }
    impl_persist_fields!(Widget { count, log });

    #[test]
    fn persist_overwrites_state_and_keeps_config() {
        let old = Widget { tunable: 1, count: 41, log: vec![4, 5] };
        let mut w = SnapWriter::new();
        old.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Widget { tunable: 2, count: 0, log: Vec::new() };
        fresh.load_state(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(fresh.tunable, 2, "config fields stay rebuilt");
        assert_eq!(fresh.count, 41);
        assert_eq!(fresh.log, vec![4, 5]);
    }
}
