//! Deterministic pseudo-random number generation.
//!
//! DIABLO's headline property is *repeatable, deterministic experiments*
//! (§1). Every stochastic model component therefore draws from an in-crate
//! xoshiro256** generator seeded through SplitMix64, so results are identical
//! across platforms, Rust versions and dependency upgrades. Components derive
//! independent streams from a master seed plus a stable stream id, which
//! keeps per-component randomness independent of event interleaving — a
//! prerequisite for serial and partition-parallel runs to agree.

/// Deterministic xoshiro256** PRNG.
///
/// # Examples
///
/// ```
/// use diablo_engine::rng::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s = [0xDEAD_BEEF, 1, 2, 3];
        }
        DetRng { s }
    }

    /// The raw xoshiro256** state, for snapshotting. Restoring through
    /// [`DetRng::from_state`] resumes the sequence exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`DetRng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }

    /// Derives an independent stream for a sub-component.
    ///
    /// The same `(seed, stream)` pair always produces the same stream, and
    /// distinct stream ids produce decorrelated sequences.
    pub fn derive(&self, stream: u64) -> DetRng {
        // Mix the current state with the stream id through SplitMix64.
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed ^ (stream << 1 | 1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]`; safe as a log() argument.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below with zero bound");
        // Widening multiply rejection sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive with lo > hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.next_below(items.len() as u64) as usize])
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "invalid exponential mean: {mean}");
        -mean * self.next_f64_open().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let root = DetRng::new(99);
        let mut s1a = root.derive(1);
        let mut s1b = root.derive(1);
        let mut s2 = root.derive(2);
        assert_eq!(s1a.next_u64(), s1b.next_u64());
        let mut s1 = root.derive(1);
        let matches = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::new(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.next_below(10) as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow generous 10% deviation.
            assert!((9_000..11_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = DetRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(4, 6) {
                4 => seen_lo = true,
                6 => seen_hi = true,
                5 => {}
                other => panic!("out of range value {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(13);
        let n = 200_000;
        let mean = 42.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < mean * 0.02, "observed mean {observed}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::new(19);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]).copied(), Some(42));
    }
}
