//! Engine error types.

use crate::event::ComponentId;
use crate::time::SimTime;
use core::fmt;

/// Errors surfaced by the simulation executors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A component scheduled a cross-partition message that would arrive
    /// inside the current synchronization quantum. Cross-partition links
    /// must have latency at least one quantum (the parallel analogue of
    /// DIABLO's inter-FPGA transceiver latency floor).
    CrossPartitionTooSoon {
        /// Scheduling component.
        source: ComponentId,
        /// Receiving component.
        target: ComponentId,
        /// Offending delivery time.
        at: SimTime,
        /// First legal delivery time (the quantum boundary).
        window_end: SimTime,
    },
    /// An unknown component id was referenced.
    UnknownComponent(ComponentId),
    /// A worker thread panicked during a parallel run.
    WorkerPanicked,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::CrossPartitionTooSoon { source, target, at, window_end } => write!(
                f,
                "cross-partition message {source} -> {target} at {at} precedes quantum \
                 boundary {window_end}; increase the link latency or shrink the quantum"
            ),
            EngineError::UnknownComponent(id) => write!(f, "unknown component {id}"),
            EngineError::WorkerPanicked => write!(f, "a parallel worker thread panicked"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::CrossPartitionTooSoon {
            source: ComponentId(1),
            target: ComponentId(2),
            at: SimTime::from_nanos(100),
            window_end: SimTime::from_nanos(500),
        };
        let s = e.to_string();
        assert!(s.contains("c1"));
        assert!(s.contains("c2"));
        assert!(s.contains("quantum"));
        assert!(EngineError::UnknownComponent(ComponentId(9)).to_string().contains("c9"));
    }
}
