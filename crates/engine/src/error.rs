//! Engine error types.

use crate::event::ComponentId;
use crate::time::SimTime;
use core::fmt;

/// Errors surfaced by the simulation executors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A component scheduled a cross-partition message arriving less than
    /// one lookahead (the synchronization quantum) after it was sent.
    /// Cross-partition links must have latency at least one lookahead —
    /// the parallel analogue of DIABLO's inter-FPGA transceiver latency
    /// floor — whatever the worker-thread placement on this host.
    CrossPartitionTooSoon {
        /// Scheduling component.
        source: ComponentId,
        /// Receiving component.
        target: ComponentId,
        /// Offending delivery time.
        at: SimTime,
        /// First legal delivery time (send time plus one lookahead).
        earliest_ok: SimTime,
    },
    /// An unknown component id was referenced.
    UnknownComponent(ComponentId),
    /// A worker thread panicked during a parallel run.
    WorkerPanicked,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::CrossPartitionTooSoon { source, target, at, earliest_ok } => write!(
                f,
                "cross-partition message {source} -> {target} at {at} precedes the quantum \
                 lookahead floor {earliest_ok}; increase the link latency or shrink the quantum"
            ),
            EngineError::UnknownComponent(id) => write!(f, "unknown component {id}"),
            EngineError::WorkerPanicked => write!(f, "a parallel worker thread panicked"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EngineError::CrossPartitionTooSoon {
            source: ComponentId(1),
            target: ComponentId(2),
            at: SimTime::from_nanos(100),
            earliest_ok: SimTime::from_nanos(500),
        };
        let s = e.to_string();
        assert!(s.contains("c1"));
        assert!(s.contains("c2"));
        assert!(s.contains("quantum"));
        assert!(EngineError::UnknownComponent(ComponentId(9)).to_string().contains("c9"));
    }
}
