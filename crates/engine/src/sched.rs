//! Event schedulers: the [`EventQueue`] abstraction, the default two-tier
//! [`CalendarQueue`], and the reference [`HeapQueue`].
//!
//! # Why a calendar queue
//!
//! DIABLO's FPGA schedulers make event dispatch nearly free: picking the
//! next model to advance is a constant-time hardware operation, which is a
//! large part of the ~250× speedup over software simulators the paper
//! reports (§5). The software engine originally paid an O(log n)
//! `BinaryHeap` sift on a 24-byte [`EventKey`] for every push *and* pop —
//! millions of comparisons per run that the models themselves never asked
//! for. A calendar queue (Brown 1988, the structure used by most production
//! discrete-event simulators) recovers amortized O(1) scheduling for the
//! near future, which is where virtually all simulation events live: link
//! serialization delays, switch forwarding latencies, and CPU timer ticks
//! are all within microseconds of "now".
//!
//! # Structure
//!
//! Two tiers:
//!
//! * a **bucketed wheel** of `2^BUCKET_BITS` slots, each
//!   `2^BUCKET_SHIFT_PS` picoseconds wide (≈0.5 ns by default, so the
//!   events of one slot are nearly always a handful at the same instant —
//!   link serialization and switch hops resolve at nanosecond scale).
//!   Pushing an event whose delivery bucket lies within one wheel
//!   revolution (≈4.2 µs) of the cursor is an O(1) append. A per-slot
//!   occupancy bitmap lets the cursor skip runs of empty slots a 64-slot
//!   word at a time, which is what makes narrow buckets affordable;
//! * an **overflow min-heap** for far-future events (e.g. 200 ms TCP
//!   retransmission timers). Overflow events migrate into the wheel lazily
//!   as the cursor advances, so each pays O(log overflow) once instead of
//!   keeping the hot path's comparisons.
//!
//! The bucket currently being drained is sorted *descending* by
//! [`EventKey`] so serving the next event is a `Vec::pop`. Events scheduled
//! into the active bucket while it drains (a component emitting a same- or
//! near-instant follow-up) are placed by binary search, preserving order.
//!
//! # Determinism
//!
//! [`CalendarQueue`] pops events in exactly the total
//! `(time, target, source, source_seq)` order of [`EventKey`] — the same
//! order [`HeapQueue`] (the original `BinaryHeap` scheduler) produces —
//! for *any* interleaving of pushes and pops. Bucketing partitions events
//! by time, the active bucket is kept key-sorted, and equal-time events
//! always share a bucket, so the global minimum is always the active
//! bucket's head. `tests/prop_sched.rs` checks byte-identical agreement
//! against [`HeapQueue`] under random interleavings, and the executor
//! cross-tests (`tests/determinism.rs`) confirm serial/parallel runs stay
//! bit-identical end to end.

use crate::event::{Event, EventKey, HeapEntry};
use std::collections::BinaryHeap;

/// Minimal interface the executors need from an event scheduler.
///
/// `peek_key` takes `&mut self` because the calendar queue advances its
/// cursor lazily: finding the next event may rotate the wheel and migrate
/// overflow entries.
pub trait EventQueue<M> {
    /// Inserts an event.
    fn push(&mut self, ev: Event<M>);
    /// The key of the earliest event, if any.
    fn peek_key(&mut self) -> Option<EventKey>;
    /// Removes and returns the earliest event.
    fn pop(&mut self) -> Option<Event<M>>;
    /// Removes and returns the earliest event *iff* its delivery time is
    /// strictly before `bound_ps` (picoseconds). The executors' hot loops
    /// use this fused form so serving an event is one queue operation, not
    /// a peek followed by a pop.
    fn pop_before(&mut self, bound_ps: u64) -> Option<Event<M>> {
        match self.peek_key() {
            Some(k) if k.time.as_picos() < bound_ps => self.pop(),
            _ => None,
        }
    }
    /// Number of queued events.
    fn len(&self) -> usize;
    /// `true` if no events are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original `BinaryHeap` scheduler, kept as the reference
/// implementation for differential tests and as a fallback for workloads
/// with pathological far-future scheduling.
#[derive(Debug)]
pub struct HeapQueue<M> {
    heap: BinaryHeap<HeapEntry<M>>,
}

impl<M> Default for HeapQueue<M> {
    fn default() -> Self {
        HeapQueue { heap: BinaryHeap::new() }
    }
}

impl<M> HeapQueue<M> {
    /// Creates an empty heap scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M> EventQueue<M> for HeapQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        self.heap.push(HeapEntry(ev));
    }
    fn peek_key(&mut self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.0.key)
    }
    fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|e| e.0)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Default bucket width: `2^9` ps ≈ 0.5 ns. Narrow buckets keep the active
/// bucket small so the per-bucket sort stays short even with thousands of
/// pending timers; the occupancy bitmap makes skipping the resulting empty
/// slots free.
const BUCKET_SHIFT_PS: u32 = 9;
/// Default wheel size: `2^13` buckets → one revolution ≈ 4.2 µs, comfortably
/// past the quantum/window scale; longer timers ride the overflow heap.
const BUCKET_BITS: u32 = 13;

/// Two-tier calendar-queue scheduler; see the module docs.
#[derive(Debug)]
pub struct CalendarQueue<M> {
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// `buckets.len() - 1`; the wheel size is a power of two.
    mask: u64,
    /// The wheel. Slot `b & mask` holds events of absolute bucket `b` when
    /// `cursor < b < cursor + buckets.len()`.
    buckets: Box<[Vec<Event<M>>]>,
    /// One bit per wheel slot, set iff the slot is non-empty; lets the
    /// cursor jump over runs of empty slots a word at a time.
    occupied: Box<[u64]>,
    /// Events in wheel slots (excludes `current` and `overflow`).
    wheel_len: usize,
    /// Absolute index of the bucket currently draining into `current`.
    cursor: u64,
    /// The active bucket, sorted descending by key; next event is `last()`.
    current: Vec<Event<M>>,
    /// Far-future events (absolute bucket ≥ `cursor + buckets.len()`).
    overflow: BinaryHeap<HeapEntry<M>>,
    /// Total queued events.
    len: usize,
}

impl<M> Default for CalendarQueue<M> {
    fn default() -> Self {
        Self::with_params(BUCKET_SHIFT_PS, BUCKET_BITS)
    }
}

impl<M> CalendarQueue<M> {
    /// Creates an empty scheduler with the default geometry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler with buckets `2^bucket_shift_ps` picoseconds
    /// wide and a wheel of `2^bucket_bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero-size wheel) or if the
    /// combined shift would overflow bucket arithmetic.
    pub fn with_params(bucket_shift_ps: u32, bucket_bits: u32) -> Self {
        assert!((1..=20).contains(&bucket_bits), "unreasonable wheel size");
        assert!(bucket_shift_ps < 64, "bucket width overflows u64");
        let n = 1usize << bucket_bits;
        CalendarQueue {
            shift: bucket_shift_ps,
            mask: (n - 1) as u64,
            buckets: (0..n).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; n.div_ceil(64)].into_boxed_slice(),
            wheel_len: 0,
            cursor: 0,
            current: Vec::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, key: &EventKey) -> u64 {
        key.time.as_picos() >> self.shift
    }

    #[inline]
    fn wheel_slots(&self) -> u64 {
        self.mask + 1
    }

    /// First absolute bucket beyond the wheel's reach from `cursor`.
    #[inline]
    fn horizon(&self) -> u64 {
        self.cursor.saturating_add(self.wheel_slots())
    }

    /// Inserts into `current`, keeping it sorted descending by key.
    fn insert_current(&mut self, ev: Event<M>) {
        let at = self.current.partition_point(|e| e.key > ev.key);
        self.current.insert(at, ev);
    }

    #[inline]
    fn set_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn clear_occupied(&mut self, slot: usize) {
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
    }

    /// First occupied slot at or (circularly) after `start`. Caller
    /// guarantees at least one bit is set.
    #[inline]
    fn next_occupied_slot(&self, start: usize) -> usize {
        let words = &self.occupied;
        let mut wi = start >> 6;
        let mut w = words[wi] & (!0u64 << (start & 63));
        loop {
            if w != 0 {
                return (wi << 6) + w.trailing_zeros() as usize;
            }
            wi += 1;
            if wi == words.len() {
                wi = 0;
            }
            w = words[wi];
        }
    }

    /// Rotates the wheel to the next non-empty bucket and loads it into
    /// `current`. Caller guarantees `current` is drained and at least one
    /// event remains in the wheel or overflow.
    #[cold]
    fn advance(&mut self) {
        debug_assert!(self.current.is_empty());
        debug_assert!(self.wheel_len + self.overflow.len() == self.len);
        if self.wheel_len > 0 {
            // All wheel events live strictly within one revolution ahead of
            // the cursor; the occupancy bitmap finds the nearest one a word
            // at a time instead of probing slots individually.
            let n = self.wheel_slots() as usize;
            let cslot = (self.cursor & self.mask) as usize;
            let slot = self.next_occupied_slot((cslot + 1) % n);
            let d = ((slot + n - cslot - 1) % n) + 1;
            self.cursor += d as u64;
        } else {
            // Wheel idle: jump straight to the earliest far-future bucket.
            let head = self.overflow.peek().expect("advance called on an empty queue");
            self.cursor = self.bucket_of(&head.0.key);
        }
        // The horizon moved: migrate overflow events that are now within
        // one revolution. The overflow heap is keyed by EventKey, and time
        // is the key's major field, so its head always has the minimum
        // bucket.
        let horizon = self.horizon();
        while let Some(head) = self.overflow.peek() {
            let b = self.bucket_of(&head.0.key);
            if b >= horizon {
                break;
            }
            let ev = self.overflow.pop().expect("peeked entry vanished").0;
            if b == self.cursor {
                self.current.push(ev);
            } else {
                let s = (b & self.mask) as usize;
                self.buckets[s].push(ev);
                self.set_occupied(s);
                self.wheel_len += 1;
            }
        }
        let cslot = (self.cursor & self.mask) as usize;
        self.clear_occupied(cslot);
        let slot = &mut self.buckets[cslot];
        self.wheel_len -= slot.len();
        if self.current.is_empty() {
            // Steal the slot's allocation outright; capacities ping-pong
            // between the slot and `current` across revolutions.
            std::mem::swap(&mut self.current, slot);
        } else {
            self.current.append(slot);
        }
        // Descending sort: serving is then a plain Vec::pop. Keys are
        // unique (per-source sequence numbers), so unstable sorting cannot
        // perturb the order. Single-event buckets (the common case with
        // sub-ns buckets) skip the sort entirely.
        if self.current.len() > 1 {
            self.current.sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
        }
        debug_assert!(!self.current.is_empty());
    }
}

impl<M> EventQueue<M> for CalendarQueue<M> {
    fn push(&mut self, ev: Event<M>) {
        let b = self.bucket_of(&ev.key);
        self.len += 1;
        if b <= self.cursor {
            // Active (or past — tolerated for robustness) bucket: keep the
            // drain order exact. Executors only schedule at or after "now",
            // so such an event is always still undelivered.
            self.insert_current(ev);
        } else if b < self.horizon() {
            let s = (b & self.mask) as usize;
            self.buckets[s].push(ev);
            self.set_occupied(s);
            self.wheel_len += 1;
        } else {
            self.overflow.push(HeapEntry(ev));
        }
    }

    fn peek_key(&mut self) -> Option<EventKey> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.advance();
        }
        self.current.last().map(|e| e.key)
    }

    fn pop(&mut self) -> Option<Event<M>> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.advance();
        }
        let ev = self.current.pop();
        debug_assert!(ev.is_some());
        self.len -= 1;
        ev
    }

    fn pop_before(&mut self, bound_ps: u64) -> Option<Event<M>> {
        if self.len == 0 {
            return None;
        }
        if self.current.is_empty() {
            self.advance();
        }
        let head = self.current.last().expect("advance left current empty");
        if head.key.time.as_picos() >= bound_ps {
            return None;
        }
        self.len -= 1;
        self.current.pop()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ComponentId, EventKind};
    use crate::time::SimTime;

    fn ev(time_ps: u64, target: u32, seq: u64) -> Event<()> {
        Event {
            key: EventKey {
                time: SimTime::from_picos(time_ps),
                target: ComponentId(target),
                source: ComponentId(0),
                source_seq: seq,
            },
            kind: EventKind::Timer(0),
        }
    }

    fn drain_keys<Q: EventQueue<()>>(q: &mut Q) -> Vec<EventKey> {
        core::iter::from_fn(|| q.pop().map(|e| e.key)).collect()
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q = CalendarQueue::<()>::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_key(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn near_events_pop_in_key_order() {
        let mut q = CalendarQueue::<()>::new();
        // Same bucket, distinct keys, inserted out of order.
        q.push(ev(500, 2, 0));
        q.push(ev(500, 1, 1));
        q.push(ev(100, 9, 2));
        q.push(ev(500, 1, 0));
        let got = drain_keys(&mut q);
        assert_eq!(got.len(), 4);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(got[0].time, SimTime::from_picos(100));
    }

    #[test]
    fn far_future_events_go_through_overflow() {
        let mut q = CalendarQueue::<()>::with_params(4, 2); // 16 ps buckets, 4 slots
        q.push(ev(5, 0, 0));
        // 200 "ms" analogue: far beyond the 64 ps wheel horizon.
        q.push(ev(1_000_000, 0, 1));
        q.push(ev(40, 0, 2));
        assert_eq!(q.len(), 3);
        let got = drain_keys(&mut q);
        assert_eq!(
            got.iter().map(|k| k.time.as_picos()).collect::<Vec<_>>(),
            vec![5, 40, 1_000_000]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        let mut cal = CalendarQueue::<()>::with_params(6, 3);
        let mut heap = HeapQueue::<()>::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut popped = Vec::new();
        let mut reference = Vec::new();
        for round in 0..2_000u64 {
            let t = next() % 50_000;
            let e = ev(t, (next() % 7) as u32, round);
            cal.push(e.clone());
            heap.push(e);
            if round % 3 == 0 {
                for _ in 0..(next() % 3) {
                    if let Some(a) = cal.pop() {
                        popped.push(a.key);
                    }
                    if let Some(b) = heap.pop() {
                        reference.push(b.key);
                    }
                }
            }
        }
        popped.extend(drain_keys(&mut cal));
        reference.extend(drain_keys(&mut heap));
        assert_eq!(popped, reference);
    }

    #[test]
    fn push_into_active_bucket_keeps_order() {
        let mut q = CalendarQueue::<()>::with_params(10, 4); // 1024 ps buckets
        q.push(ev(100, 5, 0));
        q.push(ev(100, 7, 1));
        let first = q.pop().unwrap();
        assert_eq!(first.key.target, ComponentId(5));
        // Schedule into the bucket being drained, both before and after the
        // remaining event's key.
        q.push(ev(100, 6, 2));
        q.push(ev(100, 8, 3));
        let order: Vec<u32> = drain_keys(&mut q).iter().map(|k| k.target.0).collect();
        assert_eq!(order, vec![6, 7, 8]);
    }

    #[test]
    fn len_tracks_all_tiers() {
        let mut q = CalendarQueue::<()>::with_params(4, 2);
        q.push(ev(1, 0, 0)); // current/wheel
        q.push(ev(100, 0, 1)); // wheel or overflow
        q.push(ev(1 << 40, 0, 2)); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        drain_keys(&mut q);
        assert_eq!(q.len(), 0);
    }
}
