//! # diablo-baseline — the comparison simulators
//!
//! The evaluation methodologies DIABLO is compared against (§2.2, §4.1):
//!
//! * [`agent`] / [`incast`] — an ns2-style *network-only* simulator:
//!   packet-granular Reno agents with zero OS/CPU cost, attached to the
//!   same switch models as the full system. The divergence between this
//!   baseline and the full stack at scale is the paper's core claim.
//! * [`analytic`] — closed-form queueing estimates (fluid incast model,
//!   Erlang-C server latency).

#![warn(missing_docs)]

pub mod agent;
pub mod analytic;
pub mod incast;

pub use agent::{TcpSender, TcpSink, PKT_SIZE};
pub use incast::{run_baseline_incast, BaselineIncastClient, BaselineServer};
