//! ns2-style TCP agents: packet-granular Reno sender and acking sink.
//!
//! "Traditional network simulators like ns2 focus on network protocols but
//! not the implementation of the OS network stack and application
//! interface" (§4.1). This module reproduces that abstraction level on
//! purpose: no handshake, no byte stream, no syscalls, no CPU — a sender
//! agent emits fixed-size packets under Reno congestion control, and a sink
//! acknowledges every packet. The delta between these agents and the full
//! `diablo-stack` endpoints *is* the paper's point.

use diablo_engine::time::{SimDuration, SimTime};
use diablo_net::payload::{TcpFlags, TcpSegment};

/// Fixed agent packet payload (ns2's `packetSize_`).
pub const PKT_SIZE: u32 = 1460;

/// Output of one agent invocation.
#[derive(Debug, Default)]
pub struct AgentOut {
    /// Segments to transmit.
    pub segs: Vec<TcpSegment>,
    /// (Re-)arm the retransmission timer at this time.
    pub arm_rto: Option<SimTime>,
    /// Transfer completed (all packets acked).
    pub complete: bool,
}

/// Reno sender agent (ns2 `Agent/TCP`-alike): window in packets, cumulative
/// ACKs, fast retransmit on 3 dupacks, RTO with exponential backoff and a
/// 200 ms floor.
#[derive(Debug, Clone)]
pub struct TcpSender {
    /// Source port stamped on segments.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    goal: u64,
    next_pkt: u64,
    una: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    rto: SimDuration,
    rto_base: SimDuration,
    rto_gen: u64,
    rto_armed: bool,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    sample: Option<(u64, SimTime)>,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Timeouts fired.
    pub rtos: u64,
}

impl TcpSender {
    /// Creates an idle sender.
    pub fn new(sport: u16, dport: u16) -> Self {
        TcpSender {
            sport,
            dport,
            goal: 0,
            next_pkt: 0,
            una: 0,
            cwnd: 2.0,
            ssthresh: f64::MAX / 2.0,
            dupacks: 0,
            rto: SimDuration::from_secs(1),
            rto_base: SimDuration::from_millis(200),
            rto_gen: 0,
            rto_armed: false,
            srtt: None,
            rttvar: SimDuration::ZERO,
            sample: None,
            retransmits: 0,
            rtos: 0,
        }
    }

    /// Current retransmission-timer generation.
    pub fn rto_gen(&self) -> u64 {
        self.rto_gen
    }

    /// Packets acknowledged so far in the current transfer.
    pub fn acked(&self) -> u64 {
        self.una
    }

    /// `true` when no transfer is in progress.
    pub fn idle(&self) -> bool {
        self.una >= self.goal
    }

    /// Begins (or extends) a transfer by `pkts` packets.
    pub fn start_transfer(&mut self, pkts: u64, now: SimTime, out: &mut AgentOut) {
        self.goal += pkts;
        // ns2 restarts each transfer with the initial window.
        self.cwnd = self.cwnd.max(2.0);
        self.try_send(now, out);
    }

    fn make_pkt(&self, pkt: u64) -> TcpSegment {
        TcpSegment {
            src_port: self.sport,
            dst_port: self.dport,
            seq: pkt,
            ack: 0,
            flags: TcpFlags::ACK,
            wnd: u32::MAX,
            payload_len: PKT_SIZE,
            markers: Vec::new(),
        }
    }

    fn flight(&self) -> u64 {
        self.next_pkt.saturating_sub(self.una)
    }

    fn try_send(&mut self, now: SimTime, out: &mut AgentOut) {
        while self.next_pkt < self.goal && self.flight() < self.cwnd as u64 {
            let seg = self.make_pkt(self.next_pkt);
            if self.sample.is_none() {
                self.sample = Some((self.next_pkt, now));
            }
            self.next_pkt += 1;
            out.segs.push(seg);
        }
        if self.flight() > 0 && !self.rto_armed {
            self.arm(now, out);
        }
    }

    fn arm(&mut self, now: SimTime, out: &mut AgentOut) {
        self.rto_gen += 1;
        self.rto_armed = true;
        out.arm_rto = Some(now + self.rto);
    }

    /// Processes a cumulative ACK (`seg.ack` = next expected packet).
    pub fn on_ack(&mut self, seg: &TcpSegment, now: SimTime, out: &mut AgentOut) {
        let ack = seg.ack;
        if ack > self.una {
            if let Some((pkt, at)) = self.sample {
                if ack > pkt {
                    let s = now.saturating_duration_since(at);
                    match self.srtt {
                        None => {
                            self.srtt = Some(s);
                            self.rttvar = s / 2;
                        }
                        Some(v) => {
                            let diff = if v > s { v - s } else { s - v };
                            self.rttvar = (self.rttvar * 3 + diff) / 4;
                            self.srtt = Some((v * 7 + s) / 8);
                        }
                    }
                    self.rto = (self.srtt.expect("set above") + self.rttvar * 4)
                        .max(self.rto_base)
                        .min(SimDuration::from_secs(60));
                    self.sample = None;
                }
            }
            self.una = ack;
            self.next_pkt = self.next_pkt.max(ack);
            self.dupacks = 0;
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
            if self.flight() > 0 {
                self.arm(now, out);
            } else {
                self.rto_gen += 1;
                self.rto_armed = false;
            }
            if self.una >= self.goal {
                out.complete = true;
            }
            self.try_send(now, out);
        } else if ack == self.una && self.flight() > 0 {
            self.dupacks += 1;
            if self.dupacks == 3 {
                self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.retransmits += 1;
                self.sample = None;
                out.segs.push(self.make_pkt(self.una));
                self.arm(now, out);
            }
        }
    }

    /// Handles a retransmission-timeout with generation `gen`.
    pub fn on_rto(&mut self, gen: u64, now: SimTime, out: &mut AgentOut) {
        if gen != self.rto_gen || !self.rto_armed {
            return;
        }
        self.rto_armed = false;
        if self.flight() == 0 {
            return;
        }
        self.rtos += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.next_pkt = self.una;
        self.dupacks = 0;
        self.sample = None;
        self.retransmits += 1;
        out.segs.push(self.make_pkt(self.una));
        self.next_pkt = self.una + 1;
        self.rto = (self.rto * 2).min(SimDuration::from_secs(60));
        self.arm(now, out);
    }
}

/// Acking sink agent (ns2 `Agent/TCPSink`): acknowledges every packet
/// cumulatively, tracking out-of-order arrivals.
#[derive(Debug, Clone, Default)]
pub struct TcpSink {
    rcv_nxt: u64,
    ooo: std::collections::BTreeSet<u64>,
    /// Packets delivered in order.
    pub delivered: u64,
}

impl TcpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// In-order bytes delivered.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered * PKT_SIZE as u64
    }

    /// Resets the delivery counter between iterations (sequence state is
    /// kept: the sender's numbering continues).
    pub fn take_delivered(&mut self) -> u64 {
        std::mem::take(&mut self.delivered)
    }

    /// Processes a data packet, returning the ACK to send back.
    pub fn on_data(&mut self, seg: &TcpSegment) -> TcpSegment {
        let pkt = seg.seq;
        if pkt == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.delivered += 1;
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
                self.delivered += 1;
            }
        } else if pkt > self.rcv_nxt {
            self.ooo.insert(pkt);
        }
        TcpSegment {
            src_port: seg.dst_port,
            dst_port: seg.src_port,
            seq: 0,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            wnd: u32::MAX,
            payload_len: 0,
            markers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lossless in-memory pipe driving sender and sink directly.
    fn run_transfer(pkts: u64, drop: &[u64]) -> (TcpSender, TcpSink, u64) {
        let mut snd = TcpSender::new(1, 2);
        let mut sink = TcpSink::new();
        let mut now = SimTime::from_micros(1);
        let mut out = AgentOut::default();
        snd.start_transfer(pkts, now, &mut out);
        let mut sent: u64 = 0;
        let mut events: Vec<(SimTime, TcpSegment)> = Vec::new();
        let mut rto_at: Option<(SimTime, u64)> = out.arm_rto.map(|t| (t, snd.rto_gen()));
        let delay = SimDuration::from_micros(100);
        let mut queue: std::collections::VecDeque<TcpSegment> = out.segs.into();
        let mut steps = 0;
        while steps < 100_000 {
            steps += 1;
            if let Some(seg) = queue.pop_front() {
                let n = sent;
                sent += 1;
                if drop.contains(&n) {
                    continue;
                }
                events.push((now + delay, seg));
                continue;
            }
            // Advance to next event or RTO.
            let next_ev = events.first().map(|(t, _)| *t);
            let next_rto = rto_at.map(|(t, _)| t);
            now = match (next_ev, next_rto) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            let mut out = AgentOut::default();
            if next_ev == Some(now) {
                let (_, seg) = events.remove(0);
                if seg.payload_len > 0 {
                    let ack = sink.on_data(&seg);
                    events.push((now + delay, ack));
                } else {
                    snd.on_ack(&seg, now, &mut out);
                }
            } else if let Some((t, gen)) = rto_at {
                if t == now {
                    rto_at = None;
                    snd.on_rto(gen, now, &mut out);
                }
            }
            if let Some(t) = out.arm_rto {
                rto_at = Some((t, snd.rto_gen()));
            }
            queue.extend(out.segs);
            events.sort_by_key(|(t, _)| *t);
            if snd.idle() && queue.is_empty() && events.is_empty() {
                break;
            }
        }
        (snd, sink, sent)
    }

    #[test]
    fn lossless_transfer_completes() {
        let (snd, sink, sent) = run_transfer(50, &[]);
        assert!(snd.idle());
        assert_eq!(sink.delivered, 50);
        assert_eq!(sent, 50); // every data packet exactly once
        assert_eq!(snd.retransmits, 0);
    }

    #[test]
    fn single_loss_recovers() {
        let (snd, sink, _) = run_transfer(50, &[5]);
        assert!(snd.idle());
        assert_eq!(sink.delivered, 50);
        assert!(snd.retransmits >= 1);
    }

    #[test]
    fn tail_loss_needs_rto() {
        let (snd, sink, _) = run_transfer(3, &[2]);
        assert!(snd.idle());
        assert_eq!(sink.delivered, 3);
        assert!(snd.rtos >= 1);
    }

    #[test]
    fn cwnd_grows_in_slow_start() {
        let (snd, _, _) = run_transfer(200, &[]);
        assert!(snd.cwnd > 10.0, "cwnd {} should grow", snd.cwnd);
    }

    #[test]
    fn sink_handles_reorder() {
        let mut sink = TcpSink::new();
        let seg = |seq| TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq,
            ack: 0,
            flags: TcpFlags::ACK,
            wnd: 0,
            payload_len: PKT_SIZE,
            markers: Vec::new(),
        };
        assert_eq!(sink.on_data(&seg(0)).ack, 1);
        assert_eq!(sink.on_data(&seg(2)).ack, 1); // gap
        assert_eq!(sink.on_data(&seg(1)).ack, 3); // fills
        assert_eq!(sink.delivered, 3);
        assert_eq!(sink.delivered_bytes(), 3 * PKT_SIZE as u64);
    }
}
