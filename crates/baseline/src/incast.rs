//! The incast scenario on the network-only baseline simulator.
//!
//! Same switches, same topology, same synchronized-read workload as the
//! full-stack experiment — but endpoints are zero-cost ns2-style agents.
//! Comparing this against `diablo-apps::incast` reproduces the
//! DIABLO-vs-ns2 comparison of Figure 6(a).

use crate::agent::{AgentOut, TcpSender, TcpSink, PKT_SIZE};
use diablo_engine::component::{Component, Ctx};
use diablo_engine::event::{PortNo, TimerKey};
use diablo_engine::prelude::{DetRng, SimDuration, SimTime, Simulation};
use diablo_net::addr::NodeAddr;
use diablo_net::frame::Frame;
use diablo_net::link::{LinkParams, PortPeer, TxPort};
use diablo_net::payload::{AppMessage, IpPacket, Transport, UdpDatagram};
use diablo_net::switch::{PacketSwitch, SwitchConfig};
use diablo_net::topology::{Topology, TopologyConfig};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Port used for transfer-request datagrams.
const REQ_PORT: u16 = 9;
/// TCP port pair used by the agents.
const DATA_PORT: u16 = 5001;

/// A baseline storage server: an idle TCP sender agent that transmits
/// `arg0` packets toward the client whenever a request datagram arrives.
#[derive(Debug)]
pub struct BaselineServer {
    addr: NodeAddr,
    client: NodeAddr,
    tx: TxPort,
    topo: Arc<Topology>,
    sender: TcpSender,
    /// Transfers requested so far.
    pub requests: u64,
}

impl BaselineServer {
    /// Creates a server wired to `uplink`, sending to `client`.
    pub fn new(addr: NodeAddr, client: NodeAddr, uplink: PortPeer, topo: Arc<Topology>) -> Self {
        BaselineServer {
            addr,
            client,
            tx: TxPort::new(uplink),
            topo,
            sender: TcpSender::new(DATA_PORT, DATA_PORT),
            requests: 0,
        }
    }

    /// The sender agent (for stats).
    pub fn sender(&self) -> &TcpSender {
        &self.sender
    }

    fn flush(&mut self, out: AgentOut, ctx: &mut Ctx<'_, Frame>) {
        for seg in out.segs {
            let pkt = IpPacket::tcp(self.addr, self.client, seg);
            let route = self.topo.route(self.addr, self.client);
            let wire = pkt.wire_bytes();
            let timing = self.tx.transmit(ctx.now(), wire);
            ctx.send_at(self.tx.peer.component, self.tx.peer.port, timing.arrival, {
                Frame::new(pkt, route)
            });
        }
        if let Some(at) = out.arm_rto {
            ctx.set_timer_at(at, self.sender.rto_gen());
        }
    }
}

impl Component<Frame> for BaselineServer {
    fn on_timer(&mut self, key: TimerKey, ctx: &mut Ctx<'_, Frame>) {
        let mut out = AgentOut::default();
        self.sender.on_rto(key, ctx.now(), &mut out);
        self.flush(out, ctx);
    }

    fn on_message(&mut self, _port: PortNo, frame: Frame, ctx: &mut Ctx<'_, Frame>) {
        let mut out = AgentOut::default();
        match &frame.packet.transport {
            Transport::Udp(d) => {
                // A transfer request.
                self.requests += 1;
                self.sender.start_transfer(d.msg.arg0, ctx.now(), &mut out);
            }
            Transport::Tcp(seg) => {
                let seg = seg.clone();
                self.sender.on_ack(&seg, ctx.now(), &mut out);
            }
        }
        self.flush(out, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The baseline incast client: requests `fragment` packets from every
/// server each iteration and waits for all of them.
#[derive(Debug)]
pub struct BaselineIncastClient {
    addr: NodeAddr,
    servers: Vec<NodeAddr>,
    tx: TxPort,
    topo: Arc<Topology>,
    frag_pkts: u64,
    iterations: u64,
    sinks: HashMap<NodeAddr, TcpSink>,
    pending: HashSet<NodeAddr>,
    iter: u64,
    iter_started: SimTime,
    /// Duration of each completed iteration.
    pub iteration_times: Vec<SimDuration>,
    /// All iterations done.
    pub done: bool,
}

impl BaselineIncastClient {
    /// Creates a client fetching `frag_pkts` packets from each server per
    /// iteration.
    pub fn new(
        addr: NodeAddr,
        servers: Vec<NodeAddr>,
        frag_pkts: u64,
        iterations: u64,
        uplink: PortPeer,
        topo: Arc<Topology>,
    ) -> Self {
        BaselineIncastClient {
            addr,
            sinks: servers.iter().map(|&s| (s, TcpSink::new())).collect(),
            servers,
            tx: TxPort::new(uplink),
            topo,
            frag_pkts,
            iterations,
            pending: HashSet::new(),
            iter: 0,
            iter_started: SimTime::ZERO,
            iteration_times: Vec::new(),
            done: false,
        }
    }

    /// Mean goodput in bits per second for the striped block.
    pub fn goodput_bps(&self) -> f64 {
        let block = self.frag_pkts * self.servers.len() as u64 * PKT_SIZE as u64;
        let total: f64 = self.iteration_times.iter().map(|d| d.as_secs_f64()).sum();
        if total == 0.0 {
            0.0
        } else {
            (block * self.iteration_times.len() as u64) as f64 * 8.0 / total
        }
    }

    fn send_packet(&mut self, dst: NodeAddr, pkt: IpPacket, ctx: &mut Ctx<'_, Frame>) {
        let route = self.topo.route(self.addr, dst);
        let timing = self.tx.transmit(ctx.now(), pkt.wire_bytes());
        ctx.send_at(
            self.tx.peer.component,
            self.tx.peer.port,
            timing.arrival,
            Frame::new(pkt, route),
        );
    }

    fn start_iteration(&mut self, ctx: &mut Ctx<'_, Frame>) {
        self.iter += 1;
        self.iter_started = ctx.now();
        self.pending = self.servers.iter().copied().collect();
        let servers = self.servers.clone();
        for s in servers {
            let d = UdpDatagram {
                src_port: REQ_PORT,
                dst_port: REQ_PORT,
                msg: AppMessage::new(1, self.iter, 32, ctx.now()).with_arg0(self.frag_pkts),
            };
            self.send_packet(s, IpPacket::udp(self.addr, s, d), ctx);
        }
    }
}

impl Component<Frame> for BaselineIncastClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Frame>) {
        self.start_iteration(ctx);
    }

    fn on_timer(&mut self, _key: TimerKey, _ctx: &mut Ctx<'_, Frame>) {}

    fn on_message(&mut self, _port: PortNo, frame: Frame, ctx: &mut Ctx<'_, Frame>) {
        let src = frame.packet.src;
        let Transport::Tcp(seg) = &frame.packet.transport else { return };
        let seg = seg.clone();
        let Some(sink) = self.sinks.get_mut(&src) else { return };
        let ack = sink.on_data(&seg);
        let delivered = sink.delivered;
        self.send_packet(src, IpPacket::tcp(self.addr, src, ack), ctx);
        if delivered >= self.frag_pkts * self.iter
            && self.pending.remove(&src)
            && self.pending.is_empty()
        {
            self.iteration_times.push(ctx.now().saturating_duration_since(self.iter_started));
            if self.iter >= self.iterations {
                self.done = true;
            } else {
                self.start_iteration(ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs the baseline incast on a single switch (client on port 0, servers
/// on ports 1..=n), returning mean goodput in Mbps.
///
/// # Panics
///
/// Panics if the simulation fails or the client does not complete.
pub fn run_baseline_incast(
    n_servers: usize,
    iterations: u64,
    block_bytes: u64,
    switch_cfg: SwitchConfig,
    link: LinkParams,
) -> f64 {
    let topo = Arc::new(
        Topology::new(TopologyConfig {
            racks: 1,
            servers_per_rack: n_servers + 1,
            racks_per_array: 1,
        })
        .expect("valid topology"),
    );
    let mut sim = Simulation::<Frame>::new();
    let switch = sim.add_component(Box::new(PacketSwitch::new(switch_cfg, DetRng::new(3))));
    let frag_pkts = (block_bytes / n_servers as u64).div_ceil(PKT_SIZE as u64).max(1);
    let servers: Vec<NodeAddr> = (1..=n_servers).map(|i| NodeAddr(i as u32)).collect();
    let client_uplink = PortPeer { component: switch, port: PortNo(0), params: link };
    let client_id = sim.add_component(Box::new(BaselineIncastClient::new(
        NodeAddr(0),
        servers.clone(),
        frag_pkts,
        iterations,
        client_uplink,
        topo.clone(),
    )));
    let mut ids = vec![client_id];
    for (i, &s) in servers.iter().enumerate() {
        let uplink = PortPeer { component: switch, port: PortNo((i + 1) as u16), params: link };
        ids.push(sim.add_component(Box::new(BaselineServer::new(
            s,
            NodeAddr(0),
            uplink,
            topo.clone(),
        ))));
    }
    for (i, &id) in ids.iter().enumerate() {
        sim.component_mut::<PacketSwitch>(switch)
            .expect("switch")
            .connect_port(i as u16, PortPeer { component: id, port: PortNo(0), params: link });
    }
    sim.run_until(SimTime::from_secs(900)).expect("baseline run failed");
    let client = sim.component::<BaselineIncastClient>(client_id).expect("client");
    assert!(client.done, "baseline incast did not complete with {n_servers} servers");
    client.goodput_bps() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_net::switch::BufferConfig;

    #[test]
    fn uncongested_baseline_runs_near_line_rate() {
        let mut cfg = SwitchConfig::shallow_gbe("t", 8);
        cfg.buffer = BufferConfig::PerPort { bytes_per_port: 1024 * 1024 };
        let gp = run_baseline_incast(3, 5, 256 * 1024, cfg, LinkParams::gbe(500));
        assert!(gp > 500.0, "baseline goodput {gp} Mbps too low");
    }

    #[test]
    fn shallow_buffers_collapse_baseline_too() {
        let cfg = SwitchConfig::shallow_gbe("t", 16);
        let small = run_baseline_incast(2, 3, 256 * 1024, cfg.clone(), LinkParams::gbe(500));
        let cfg2 = SwitchConfig::shallow_gbe("t", 16);
        let big = run_baseline_incast(12, 3, 256 * 1024, cfg2, LinkParams::gbe(500));
        assert!(
            big < small / 2.0,
            "baseline must also collapse: goodput(2)={small:.0} goodput(12)={big:.0}"
        );
    }

    #[test]
    fn deterministic_goodput() {
        let mk = || {
            let cfg = SwitchConfig::shallow_gbe("t", 8);
            run_baseline_incast(4, 3, 256 * 1024, cfg, LinkParams::gbe(500))
        };
        assert_eq!(mk(), mk());
    }
}
