//! Analytical models (§2.2, "Analytical simulation models").
//!
//! Stochastic queueing models "raise the level of abstraction" and are much
//! faster than simulation, but struggle to capture HW/SW interactions at
//! scale. Two such models are implemented as comparison baselines:
//!
//! * a fluid incast-goodput estimate in the spirit of the
//!   Phanishayee/Vasudevan analyses: ideal pipeline time plus an expected
//!   RTO stall once the synchronized windows exceed the bottleneck buffer;
//! * an M/M/k (Erlang-C) latency model of a memcached server with `k`
//!   worker threads.

/// Estimates incast goodput (bits/s) for `n` synchronized senders.
///
/// Model: each iteration moves `block_bytes` through a `link_bps`
/// bottleneck whose port buffer holds `buffer_bytes`. The synchronized
/// first bursts total `n * init_window_bytes`; the fraction that overflows
/// the buffer is lost, and when a sender loses its whole burst it stalls
/// for `rto_s`. Expected stalls per iteration grow with the overflow
/// fraction; goodput is `block / (ideal_time + stall_time)`.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
pub fn incast_goodput_analytic(
    link_bps: f64,
    block_bytes: f64,
    buffer_bytes: f64,
    n: usize,
    init_window_bytes: f64,
    rto_s: f64,
    base_rtt_s: f64,
) -> f64 {
    assert!(link_bps > 0.0 && block_bytes > 0.0 && buffer_bytes > 0.0, "invalid parameters");
    assert!(n > 0 && init_window_bytes > 0.0 && rto_s > 0.0, "invalid parameters");
    let ideal = block_bytes * 8.0 / link_bps + base_rtt_s;
    let burst = n as f64 * init_window_bytes;
    // Fraction of the synchronized burst that cannot be buffered or
    // drained within one RTT.
    let drainable = buffer_bytes + link_bps * base_rtt_s / 8.0;
    let overflow = ((burst - drainable) / burst).max(0.0);
    // Probability that at least one sender loses enough of its window to
    // need an RTO this iteration (full-window loss); senders are
    // independent targets of the tail-drop process.
    let p_sender_rto = overflow.powf(2.0_f64.min(init_window_bytes / 1460.0));
    let p_any_rto = 1.0 - (1.0 - p_sender_rto).powi(n as i32);
    // Serialized stalls: after the first RTO the survivors finish, so one
    // stall dominates; deep collapse adds a second round.
    let stalls = p_any_rto * (1.0 + overflow);
    block_bytes * 8.0 / (ideal + stalls * rto_s)
}

/// Erlang-C: expected sojourn time (wait + service) in an M/M/k queue.
///
/// # Panics
///
/// Panics unless `lambda > 0`, `mu > 0`, `k > 0`, and the system is stable
/// (`lambda < k*mu`).
pub fn mmk_sojourn_time(lambda: f64, mu: f64, k: usize) -> f64 {
    assert!(lambda > 0.0 && mu > 0.0 && k > 0, "invalid parameters");
    let rho = lambda / (k as f64 * mu);
    assert!(rho < 1.0, "unstable queue: rho = {rho}");
    let a = lambda / mu;
    // P(wait) via Erlang C.
    let mut sum = 0.0;
    let mut term = 1.0; // a^j / j!
    for j in 0..k {
        if j > 0 {
            term *= a / j as f64;
        }
        sum += term;
    }
    let ak_kfact = term * a / k as f64; // a^k / k!
    let c = ak_kfact / (1.0 - rho) / (sum + ak_kfact / (1.0 - rho));
    c / (k as f64 * mu - lambda) + 1.0 / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goodput(n: usize) -> f64 {
        incast_goodput_analytic(
            1e9, // 1 Gbps
            256.0 * 1024.0,
            4096.0, // shallow 4 KB port buffer
            n,
            10.0 * 1460.0, // IW10
            0.2,           // 200 ms RTO
            200e-6,
        )
    }

    #[test]
    fn analytic_incast_collapses_with_fanin() {
        let g2 = goodput(2);
        let g16 = goodput(16);
        assert!(g2 > 5.0 * g16, "expected collapse: g(2)={g2:.2e} g(16)={g16:.2e}");
    }

    #[test]
    fn deep_buffers_prevent_analytic_collapse() {
        let g = incast_goodput_analytic(
            1e9,
            256.0 * 1024.0,
            4_000_000.0,
            16,
            10.0 * 1460.0,
            0.2,
            200e-6,
        );
        assert!(g > 0.5e9, "deep buffers should approach line rate, got {g:.2e}");
    }

    #[test]
    fn mm1_matches_closed_form() {
        // M/M/1: T = 1/(mu - lambda).
        let t = mmk_sojourn_time(50.0, 100.0, 1);
        assert!((t - 1.0 / 50.0).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn more_servers_reduce_waiting() {
        let t1 = mmk_sojourn_time(150.0, 100.0, 2);
        let t2 = mmk_sojourn_time(150.0, 100.0, 8);
        assert!(t2 < t1);
        // With many servers, sojourn approaches pure service time.
        assert!((t2 - 0.01).abs() < 0.002, "got {t2}");
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_queue_panics() {
        let _ = mmk_sojourn_time(300.0, 100.0, 2);
    }
}
