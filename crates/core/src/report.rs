//! Result presentation: aligned text tables, CSV output, and
//! CDF/PMF/percentile series extracted from histograms.

use diablo_engine::stats::Histogram;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use diablo_core::report::Table;
/// let mut t = Table::new(vec!["n", "goodput"]);
/// t.row(vec!["1".into(), "941.2".into()]);
/// let s = t.to_string();
/// assert!(s.contains("goodput"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        writeln!(f, "{}", line.trim_end())?;
        let sep: String = widths.iter().map(|w| format!("{}  ", "-".repeat(*w))).collect();
        writeln!(f, "{}", sep.trim_end())?;
        for r in &self.rows {
            let mut line = String::new();
            for (c, w) in r.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ");
            }
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

/// Extracts `(value_us, cumulative_fraction)` pairs from a nanosecond
/// histogram, restricted to the cumulative range `[from_q, 1.0]` —
/// the form of the paper's tail CDFs (Figures 9, 11, 13, 14, 15).
pub fn tail_cdf_us(hist: &Histogram, from_q: f64) -> Vec<(f64, f64)> {
    hist.cdf()
        .into_iter()
        .filter(|&(_, q)| q >= from_q)
        .map(|(ns, q)| (ns as f64 / 1_000.0, q))
        .collect()
}

/// Standard percentile summary of a nanosecond histogram, in microseconds.
pub fn percentiles_us(hist: &Histogram) -> Vec<(&'static str, f64)> {
    [("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99), ("p99.9", 0.999), ("max", 1.0)]
        .into_iter()
        .map(|(name, q)| (name, hist.quantile(q) as f64 / 1_000.0))
        .collect()
}

/// Formats a float with the given number of decimals.
pub fn fmt_f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_len() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["123".into(), "4".into()]);
        t.row(vec!["5".into(), "6".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(vec!["x", "note"]);
        t.row(vec!["1".into(), "plain".into()]);
        t.row(vec!["2".into(), "has,comma".into()]);
        let dir = std::env::temp_dir().join("diablo_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("x,note\n"));
        assert!(body.contains("\"has,comma\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn tail_cdf_and_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1_000); // 1..1000 us in ns
        }
        let tail = tail_cdf_us(&h, 0.95);
        assert!(!tail.is_empty());
        assert!(tail.iter().all(|&(_, q)| q >= 0.95));
        let p = percentiles_us(&h);
        let p99 = p.iter().find(|(n, _)| *n == "p99").unwrap().1;
        assert!((980.0..=1_000.0).contains(&p99), "p99 {p99}");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
