//! Cluster construction: instantiating a WSC array topology as engine
//! components, on either executor.

use diablo_engine::event::{ComponentId, EventKind, PortNo};
use diablo_engine::parallel::{ComponentHost, ParallelSimulation};
use diablo_engine::prelude::{DetRng, EngineError, RunStats, Simulation};
use diablo_engine::time::{SimDuration, SimTime};
use diablo_net::frame::Frame;
use diablo_net::link::{LinkParams, PortPeer};
use diablo_net::switch::{BufferConfig, ForwardingMode, PacketSwitch, RoutingMode, SwitchConfig};
use diablo_net::topology::{Endpoint, SwitchLevel, Topology, TopologyConfig};
use diablo_net::NodeAddr;
use diablo_nic::NicConfig;
use diablo_node::ServerNode;
use diablo_stack::kernel::NodeConfig;
use diablo_stack::process::Process;
use diablo_stack::profile::KernelProfile;
use std::any::Any;
use std::sync::Arc;

/// Executor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Single-threaded.
    Serial,
    /// Partition-parallel with the given worker count and quantum.
    Parallel {
        /// Host threads.
        partitions: usize,
        /// Synchronization quantum (must not exceed the smallest
        /// cross-partition link latency; see
        /// [`ClusterSpec::safe_quantum`]).
        quantum: SimDuration,
    },
}

/// A simulation under either executor, with a uniform interface.
pub enum SimHost {
    /// Single-threaded executor.
    Serial(Simulation<Frame>),
    /// Partition-parallel executor.
    Parallel(ParallelSimulation<Frame>),
}

impl std::fmt::Debug for SimHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimHost::Serial(s) => write!(f, "SimHost::Serial({s:?})"),
            SimHost::Parallel(p) => write!(f, "SimHost::Parallel({p:?})"),
        }
    }
}

impl SimHost {
    /// Creates a host for the given mode.
    pub fn new(mode: RunMode) -> Self {
        match mode {
            RunMode::Serial => SimHost::Serial(Simulation::new()),
            RunMode::Parallel { partitions, quantum } => {
                SimHost::Parallel(ParallelSimulation::new(partitions, quantum))
            }
        }
    }

    /// Number of partitions (1 for serial).
    pub fn partition_count(&self) -> usize {
        match self {
            SimHost::Serial(_) => 1,
            SimHost::Parallel(p) => p.partition_count(),
        }
    }

    /// Runs until `limit` simulated time.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (unknown components, quantum
    /// violations).
    pub fn run_until(&mut self, limit: SimTime) -> Result<RunStats, EngineError> {
        match self {
            SimHost::Serial(s) => s.run_until(limit),
            SimHost::Parallel(p) => p.run_until(limit),
        }
    }

    /// Total events dispatched.
    pub fn events_processed(&self) -> u64 {
        match self {
            SimHost::Serial(s) => s.events_processed(),
            SimHost::Parallel(p) => p.events_processed(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            SimHost::Serial(s) => s.now(),
            SimHost::Parallel(p) => p.now(),
        }
    }

    /// Downcasts a component for inspection.
    pub fn component<T: Any>(&self, id: ComponentId) -> Option<&T> {
        match self {
            SimHost::Serial(s) => s.component::<T>(id),
            SimHost::Parallel(p) => p.component::<T>(id),
        }
    }

    /// Mutable downcast.
    pub fn component_mut<T: Any>(&mut self, id: ComponentId) -> Option<&mut T> {
        match self {
            SimHost::Serial(s) => s.component_mut::<T>(id),
            SimHost::Parallel(p) => p.component_mut::<T>(id),
        }
    }
}

impl ComponentHost<Frame> for SimHost {
    fn add_in_partition(
        &mut self,
        partition: usize,
        component: Box<dyn diablo_engine::component::Component<Frame>>,
    ) -> ComponentId {
        match self {
            SimHost::Serial(s) => s.add_in_partition(partition, component),
            SimHost::Parallel(p) => p.add_in_partition(partition, component),
        }
    }

    fn inject(&mut self, at: SimTime, target: ComponentId, kind: EventKind<Frame>) {
        match self {
            SimHost::Serial(s) => s.inject(at, target, kind),
            SimHost::Parallel(p) => p.inject(at, target, kind),
        }
    }
}

/// Per-level switch timing/buffer template (port count comes from the
/// topology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchTemplate {
    /// Port-to-port latency.
    pub latency: SimDuration,
    /// Buffer organization.
    pub buffer: BufferConfig,
    /// Forwarding discipline.
    pub forwarding: ForwardingMode,
}

impl SwitchTemplate {
    /// The paper's commodity GbE configuration: 1 µs latency, 4 KB/port,
    /// store-and-forward.
    pub fn gbe_shallow() -> Self {
        SwitchTemplate {
            latency: SimDuration::from_micros(1),
            buffer: BufferConfig::PerPort { bytes_per_port: 4096 },
            forwarding: ForwardingMode::StoreAndForward,
        }
    }

    /// The paper's simulated 10 GbE fabric: 100 ns latency, cut-through.
    pub fn ten_gbe_fast() -> Self {
        SwitchTemplate {
            latency: SimDuration::from_nanos(100),
            buffer: BufferConfig::PerPort { bytes_per_port: 4096 },
            forwarding: ForwardingMode::CutThrough,
        }
    }

    fn to_config(self, name: String, ports: u16) -> SwitchConfig {
        SwitchConfig {
            name,
            ports,
            latency: self.latency,
            buffer: self.buffer,
            forwarding: self.forwarding,
            routing: RoutingMode::Source,
        }
    }
}

/// Everything needed to instantiate one simulated WSC array.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Array shape.
    pub topology: TopologyConfig,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// Server CPU clock.
    pub cpu: diablo_engine::time::Frequency,
    /// Server NIC parameters.
    pub nic: NicConfig,
    /// Server-to-ToR links.
    pub node_link: LinkParams,
    /// ToR-to-array links.
    pub rack_uplink: LinkParams,
    /// Array-to-datacenter links.
    pub array_uplink: LinkParams,
    /// ToR switch template.
    pub tor: SwitchTemplate,
    /// Array switch template.
    pub array: SwitchTemplate,
    /// Datacenter switch template.
    pub datacenter: SwitchTemplate,
    /// Master seed for all derived RNG streams.
    pub seed: u64,
}

impl ClusterSpec {
    /// The paper's 1 Gbps setup: GbE links, shallow store-and-forward
    /// switches with 1 µs port latency.
    pub fn gbe(topology: TopologyConfig) -> Self {
        ClusterSpec {
            topology,
            kernel: KernelProfile::linux_2_6_39(),
            cpu: diablo_engine::time::Frequency::ghz(4),
            nic: NicConfig::default(),
            node_link: LinkParams::gbe(500),
            rack_uplink: LinkParams::gbe(500),
            array_uplink: LinkParams::gbe(500),
            tor: SwitchTemplate::gbe_shallow(),
            array: SwitchTemplate::gbe_shallow(),
            datacenter: SwitchTemplate::gbe_shallow(),
            seed: 0x00D1_AB10,
        }
    }

    /// The paper's upgraded 10 Gbps setup: 10x bandwidth, 10x lower switch
    /// latency, cut-through.
    pub fn ten_gbe(topology: TopologyConfig) -> Self {
        ClusterSpec {
            node_link: LinkParams::ten_gbe(500),
            rack_uplink: LinkParams::ten_gbe(500),
            array_uplink: LinkParams::ten_gbe(500),
            tor: SwitchTemplate::ten_gbe_fast(),
            array: SwitchTemplate::ten_gbe_fast(),
            datacenter: SwitchTemplate::ten_gbe_fast(),
            ..Self::gbe(topology)
        }
    }

    /// Adds extra port-to-port latency at every switch level (Figure 12's
    /// sweep).
    #[must_use]
    pub fn with_extra_switch_latency(mut self, extra: SimDuration) -> Self {
        self.tor.latency += extra;
        self.array.latency += extra;
        self.datacenter.latency += extra;
        self
    }

    /// The largest safe parallel quantum for this spec: cross-partition
    /// messages travel ToR↔array or array↔DC links, whose delivery lags
    /// the send by at least the propagation delay.
    pub fn safe_quantum(&self) -> SimDuration {
        self.rack_uplink.propagation.min(self.array_uplink.propagation)
    }
}

/// A constructed cluster: component ids plus the topology.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The validated topology.
    pub topo: Arc<Topology>,
    /// Per-node component ids (indexed by `NodeAddr`).
    pub nodes: Vec<ComponentId>,
    /// Per-switch component ids (topology switch indexing).
    pub switches: Vec<ComponentId>,
}

impl Cluster {
    /// Builds the cluster described by `spec` into `host`.
    ///
    /// Partition placement mirrors DIABLO's FPGA mapping: each rack (its
    /// servers plus ToR) lives in one partition; array and datacenter
    /// switches live in partition 0 (the "Switch FPGAs").
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology.
    pub fn build(host: &mut SimHost, spec: &ClusterSpec) -> Cluster {
        let topo = Arc::new(Topology::new(spec.topology).expect("invalid topology configuration"));
        let nparts = host.partition_count();
        let rack_partition = |rack: usize| -> usize {
            if nparts <= 1 {
                0
            } else {
                rack % nparts
            }
        };
        let root_rng = DetRng::new(spec.seed);

        // 1. Switches.
        let mut switches = Vec::with_capacity(topo.switch_count());
        for s in 0..topo.switch_count() {
            let (template, name, partition) = match topo.switch_level(s) {
                SwitchLevel::Tor { rack } => (spec.tor, format!("tor{rack}"), rack_partition(rack)),
                SwitchLevel::Array { array } => (spec.array, format!("array{array}"), 0),
                SwitchLevel::Datacenter => (spec.datacenter, "datacenter".to_string(), 0),
            };
            let cfg = template.to_config(name, topo.switch_ports(s));
            let sw = PacketSwitch::new(cfg, root_rng.derive(1_000_000 + s as u64));
            switches.push(host.add_in_partition(partition, Box::new(sw)));
        }

        // 2. Nodes.
        let mut nodes = Vec::with_capacity(topo.nodes());
        for n in 0..topo.nodes() {
            let addr = NodeAddr(n as u32);
            let (tor, port) = topo.node_attachment(addr);
            let uplink =
                PortPeer { component: switches[tor], port: PortNo(port), params: spec.node_link };
            let cfg = NodeConfig {
                addr,
                cpu: spec.cpu,
                cpi: 1,
                profile: spec.kernel.clone(),
                nic: spec.nic,
                loopback_delay: SimDuration::from_micros(5),
            };
            let node = ServerNode::new(cfg, uplink, topo.clone());
            let partition = rack_partition(topo.rack_of(addr));
            nodes.push(host.add_in_partition(partition, Box::new(node)));
        }

        // 3. Wire every switch port according to the topology.
        for s in 0..topo.switch_count() {
            for port in 0..topo.switch_ports(s) {
                let peer = match topo.peer_of(s, port) {
                    Endpoint::Node(n) => PortPeer {
                        component: nodes[n.index()],
                        port: PortNo(0),
                        params: spec.node_link,
                    },
                    Endpoint::Switch { index, port: pport } => {
                        let params = match (topo.switch_level(s), topo.switch_level(index)) {
                            (SwitchLevel::Array { .. }, SwitchLevel::Datacenter)
                            | (SwitchLevel::Datacenter, SwitchLevel::Array { .. }) => {
                                spec.array_uplink
                            }
                            _ => spec.rack_uplink,
                        };
                        PortPeer { component: switches[index], port: PortNo(pport), params }
                    }
                    Endpoint::Unwired => continue,
                };
                host.component_mut::<PacketSwitch>(switches[s])
                    .expect("switch vanished")
                    .connect_port(port, peer);
            }
        }

        Cluster { topo, nodes, switches }
    }

    /// Component id of a node.
    pub fn node(&self, addr: NodeAddr) -> ComponentId {
        self.nodes[addr.index()]
    }

    /// Spawns a guest process on `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(&self, host: &mut SimHost, addr: NodeAddr, process: Box<dyn Process>) {
        host.component_mut::<ServerNode>(self.node(addr)).expect("node vanished").spawn(process);
    }

    /// Reads a guest process's state on `addr`.
    pub fn process<'h, T: Any>(
        &self,
        host: &'h SimHost,
        addr: NodeAddr,
        tid: diablo_stack::process::Tid,
    ) -> Option<&'h T> {
        host.component::<ServerNode>(self.node(addr))?.kernel().process::<T>(tid)
    }

    /// Sums switch buffer drops over all switches.
    pub fn total_switch_drops(&self, host: &SimHost) -> u64 {
        self.switches
            .iter()
            .map(|&id| {
                host.component::<PacketSwitch>(id)
                    .map(|s| s.stats().drops_buffer.get())
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_memcached_topology() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 4, racks_per_array: 2 });
        let mut host = SimHost::new(RunMode::Serial);
        let cluster = Cluster::build(&mut host, &spec);
        assert_eq!(cluster.nodes.len(), 16);
        assert_eq!(cluster.switches.len(), 4 + 2 + 1);
        // All ids distinct.
        let mut all: Vec<_> =
            cluster.nodes.iter().chain(cluster.switches.iter()).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16 + 7);
    }

    #[test]
    fn parallel_build_places_racks_in_partitions() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 2, racks_per_array: 2 });
        let quantum = spec.safe_quantum();
        assert_eq!(quantum, SimDuration::from_nanos(500));
        let mut host = SimHost::new(RunMode::Parallel { partitions: 2, quantum });
        let cluster = Cluster::build(&mut host, &spec);
        // Runs without quantum violations even with nothing scheduled.
        assert_eq!(cluster.nodes.len(), 8);
        host.run_until(SimTime::from_millis(1)).unwrap();
    }

    #[test]
    fn ten_gbe_spec_has_faster_everything() {
        let topo = TopologyConfig::memcached_paper(16);
        let g1 = ClusterSpec::gbe(topo);
        let g10 = ClusterSpec::ten_gbe(topo);
        assert!(g10.node_link.bandwidth.bits_per_sec() > g1.node_link.bandwidth.bits_per_sec());
        assert!(g10.tor.latency < g1.tor.latency);
        let with_extra = g10.clone().with_extra_switch_latency(SimDuration::from_nanos(50));
        assert_eq!(with_extra.tor.latency, g10.tor.latency + SimDuration::from_nanos(50));
    }
}
