//! Cluster construction: instantiating a WSC array topology as engine
//! components, on either executor.

use diablo_engine::event::{ComponentId, EventKind, PortNo};
use diablo_engine::parallel::{ComponentHost, ParallelSimulation};
use diablo_engine::prelude::{DetRng, EngineError, ExecReport, RunStats, Simulation};
use diablo_engine::time::{SimDuration, SimTime};
use diablo_net::frame::Frame;
use diablo_net::link::{LinkParams, PortPeer};
use diablo_net::switch::{
    BufferConfig, ClosRole, EcmpConfig, ForwardingMode, PacketSwitch, RoutingMode, SwitchConfig,
};
use diablo_net::topology::{Endpoint, FatTreeConfig, SwitchLevel, Topology, TopologyConfig};
use diablo_net::NodeAddr;
use diablo_nic::NicConfig;
use diablo_node::ServerNode;
use diablo_stack::kernel::NodeConfig;
use diablo_stack::process::Process;
use diablo_stack::profile::KernelProfile;
use std::any::Any;
use std::sync::Arc;

/// Executor selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Single-threaded.
    Serial,
    /// Partition-parallel over `partitions` placement partitions.
    Parallel {
        /// Number of placement partitions (racks are cut into contiguous
        /// blocks of partitions; see [`ClusterSpec::partition_plan`]).
        partitions: usize,
        /// Synchronization quantum. `None` (the recommended setting —
        /// use [`RunMode::parallel`]) derives it from the partition
        /// cut's actual lookahead when the cluster is built through
        /// [`Cluster::instantiate`]. An explicit quantum must not exceed
        /// the cut's lookahead.
        quantum: Option<SimDuration>,
        /// Worker threads the partitions are multiplexed onto. `None`
        /// lets the executor decide (`DIABLO_WORKERS` or the host's
        /// available parallelism, clamped to the partition count). Worker
        /// count affects scheduling only, never results.
        workers: Option<usize>,
    },
}

impl RunMode {
    /// Partition-parallel with the quantum derived from the topology cut
    /// (the minimum guaranteed latency of any partition-crossing link).
    /// Resolve through [`Cluster::instantiate`].
    pub fn parallel(partitions: usize) -> Self {
        RunMode::Parallel { partitions, quantum: None, workers: None }
    }

    /// Like [`RunMode::parallel`] but pinning the worker-thread count
    /// (still clamped to `partitions` by the executor).
    pub fn parallel_with_workers(partitions: usize, workers: usize) -> Self {
        RunMode::Parallel { partitions, quantum: None, workers: Some(workers) }
    }
}

/// A simulation under either executor, with a uniform interface.
pub enum SimHost {
    /// Single-threaded executor.
    Serial(Simulation<Frame>),
    /// Partition-parallel executor.
    Parallel(ParallelSimulation<Frame>),
}

impl std::fmt::Debug for SimHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimHost::Serial(s) => write!(f, "SimHost::Serial({s:?})"),
            SimHost::Parallel(p) => write!(f, "SimHost::Parallel({p:?})"),
        }
    }
}

impl SimHost {
    /// Creates a host for the given mode.
    ///
    /// # Panics
    ///
    /// Panics if the mode is parallel with `quantum: None`: a derived
    /// quantum needs the topology, so go through [`Cluster::instantiate`]
    /// instead.
    pub fn new(mode: RunMode) -> Self {
        match mode {
            RunMode::Serial => SimHost::Serial(Simulation::new()),
            RunMode::Parallel { partitions, quantum: Some(quantum), workers } => {
                SimHost::Parallel(match workers {
                    Some(w) => ParallelSimulation::with_workers(partitions, w, quantum),
                    None => ParallelSimulation::new(partitions, quantum),
                })
            }
            RunMode::Parallel { quantum: None, .. } => panic!(
                "a derived quantum needs the topology: build the cluster with \
                 Cluster::instantiate(spec, mode) instead of SimHost::new"
            ),
        }
    }

    /// Number of partitions (1 for serial).
    pub fn partition_count(&self) -> usize {
        match self {
            SimHost::Serial(_) => 1,
            SimHost::Parallel(p) => p.partition_count(),
        }
    }

    /// Runs until `limit` simulated time.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (unknown components, quantum
    /// violations).
    pub fn run_until(&mut self, limit: SimTime) -> Result<RunStats, EngineError> {
        match self {
            SimHost::Serial(s) => s.run_until(limit),
            SimHost::Parallel(p) => p.run_until(limit),
        }
    }

    /// Total events dispatched.
    pub fn events_processed(&self) -> u64 {
        match self {
            SimHost::Serial(s) => s.events_processed(),
            SimHost::Parallel(p) => p.events_processed(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match self {
            SimHost::Serial(s) => s.now(),
            SimHost::Parallel(p) => p.now(),
        }
    }

    /// Downcasts a component for inspection.
    pub fn component<T: Any>(&self, id: ComponentId) -> Option<&T> {
        match self {
            SimHost::Serial(s) => s.component::<T>(id),
            SimHost::Parallel(p) => p.component::<T>(id),
        }
    }

    /// Mutable downcast.
    pub fn component_mut<T: Any>(&mut self, id: ComponentId) -> Option<&mut T> {
        match self {
            SimHost::Serial(s) => s.component_mut::<T>(id),
            SimHost::Parallel(p) => p.component_mut::<T>(id),
        }
    }

    /// Execution statistics of the parallel executor (barrier rounds,
    /// events per round, lane occupancy); `None` for a serial host.
    pub fn exec_report(&self) -> Option<ExecReport> {
        match self {
            SimHost::Serial(_) => None,
            SimHost::Parallel(p) => Some(p.exec_report()),
        }
    }

    /// Serializes the full deterministic simulation state — clock,
    /// per-component blobs, the pending event queue — in the executors'
    /// common snapshot format, so a snapshot taken under either executor
    /// restores under either.
    pub fn save_state(&mut self, w: &mut diablo_engine::snap::SnapWriter) {
        match self {
            SimHost::Serial(s) => s.save_state(w),
            SimHost::Parallel(p) => p.save_state(w),
        }
    }

    /// Restores state saved by [`SimHost::save_state`] into a freshly
    /// built (and software-loaded) host of the same shape.
    ///
    /// # Errors
    ///
    /// Any [`SnapError`](diablo_engine::snap::SnapError) from a
    /// truncated, corrupt, or shape-mismatched stream.
    pub fn load_state(
        &mut self,
        r: &mut diablo_engine::snap::SnapReader<'_>,
    ) -> Result<(), diablo_engine::snap::SnapError> {
        match self {
            SimHost::Serial(s) => s.load_state(r),
            SimHost::Parallel(p) => p.load_state(r),
        }
    }

    /// Visits every component that exposes metrics (see
    /// [`Instrumented`](diablo_engine::metrics::Instrumented)), in
    /// component-id order under either executor.
    pub fn visit_instrumented(
        &self,
        f: impl FnMut(ComponentId, &dyn diablo_engine::metrics::Instrumented),
    ) {
        match self {
            SimHost::Serial(s) => s.visit_instrumented(f),
            SimHost::Parallel(p) => p.visit_instrumented(f),
        }
    }
}

impl ComponentHost<Frame> for SimHost {
    fn add_in_partition(
        &mut self,
        partition: usize,
        component: Box<dyn diablo_engine::component::Component<Frame>>,
    ) -> ComponentId {
        match self {
            SimHost::Serial(s) => s.add_in_partition(partition, component),
            SimHost::Parallel(p) => p.add_in_partition(partition, component),
        }
    }

    fn inject(&mut self, at: SimTime, target: ComponentId, kind: EventKind<Frame>) {
        match self {
            SimHost::Serial(s) => s.inject(at, target, kind),
            SimHost::Parallel(p) => p.inject(at, target, kind),
        }
    }
}

/// Per-level switch timing/buffer template (port count comes from the
/// topology).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchTemplate {
    /// Port-to-port latency.
    pub latency: SimDuration,
    /// Buffer organization.
    pub buffer: BufferConfig,
    /// Forwarding discipline.
    pub forwarding: ForwardingMode,
    /// ECN marking threshold in queued bytes per egress port (`None`
    /// disables marking). Set cluster-wide by
    /// [`ClusterSpec::with_ecn_threshold`] when running DCTCP.
    pub ecn_threshold: Option<u32>,
}

impl SwitchTemplate {
    /// The paper's commodity GbE configuration: 1 µs latency, 4 KB/port,
    /// store-and-forward.
    pub fn gbe_shallow() -> Self {
        SwitchTemplate {
            latency: SimDuration::from_micros(1),
            buffer: BufferConfig::PerPort { bytes_per_port: 4096 },
            forwarding: ForwardingMode::StoreAndForward,
            ecn_threshold: None,
        }
    }

    /// The paper's simulated 10 GbE fabric: 100 ns latency, cut-through.
    pub fn ten_gbe_fast() -> Self {
        SwitchTemplate {
            latency: SimDuration::from_nanos(100),
            buffer: BufferConfig::PerPort { bytes_per_port: 4096 },
            forwarding: ForwardingMode::CutThrough,
            ecn_threshold: None,
        }
    }

    fn to_config(self, name: String, ports: u16, routing: RoutingMode) -> SwitchConfig {
        SwitchConfig {
            name,
            ports,
            latency: self.latency,
            buffer: self.buffer,
            forwarding: self.forwarding,
            routing,
            ecn_threshold: self.ecn_threshold,
        }
    }
}

/// Which physical fabric a cluster instantiates its [`TopologyConfig`] on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricKind {
    /// The paper's baseline three-level tree: one ToR per rack, one array
    /// switch per group of racks, one datacenter switch.
    Tree,
    /// A 3-tier fat-tree/Clos: edge switches double as ToRs, each pod is
    /// an "array", and `(k/2)^2` core switches replace the datacenter
    /// root. Switches route with flow-consistent ECMP.
    FatTree(FatTreeConfig),
}

impl FabricKind {
    /// Short name for reports (`tree` / `fat-tree`).
    pub fn name(&self) -> &'static str {
        match self {
            FabricKind::Tree => "tree",
            FabricKind::FatTree(_) => "fat-tree",
        }
    }
}

/// Everything needed to instantiate one simulated WSC array.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Array shape. For [`FabricKind::FatTree`] this is the fat-tree's
    /// hierarchical *view* (edges as racks, pods as arrays) and must match
    /// the fabric — set both through [`ClusterSpec::with_fat_tree`].
    pub topology: TopologyConfig,
    /// Physical fabric the topology is instantiated on.
    pub fabric: FabricKind,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// Server CPU clock.
    pub cpu: diablo_engine::time::Frequency,
    /// Server NIC parameters.
    pub nic: NicConfig,
    /// Server-to-ToR links.
    pub node_link: LinkParams,
    /// ToR-to-array links.
    pub rack_uplink: LinkParams,
    /// Array-to-datacenter links.
    pub array_uplink: LinkParams,
    /// ToR switch template.
    pub tor: SwitchTemplate,
    /// Array switch template.
    pub array: SwitchTemplate,
    /// Datacenter switch template.
    pub datacenter: SwitchTemplate,
    /// Master seed for all derived RNG streams.
    pub seed: u64,
}

impl ClusterSpec {
    /// The paper's 1 Gbps setup: GbE links, shallow store-and-forward
    /// switches with 1 µs port latency.
    pub fn gbe(topology: TopologyConfig) -> Self {
        ClusterSpec {
            topology,
            fabric: FabricKind::Tree,
            kernel: KernelProfile::linux_2_6_39(),
            cpu: diablo_engine::time::Frequency::ghz(4),
            nic: NicConfig::default(),
            node_link: LinkParams::gbe(500),
            rack_uplink: LinkParams::gbe(500),
            array_uplink: LinkParams::gbe(500),
            tor: SwitchTemplate::gbe_shallow(),
            array: SwitchTemplate::gbe_shallow(),
            datacenter: SwitchTemplate::gbe_shallow(),
            seed: 0x00D1_AB10,
        }
    }

    /// The paper's upgraded 10 Gbps setup: 10x bandwidth, 10x lower switch
    /// latency, cut-through.
    pub fn ten_gbe(topology: TopologyConfig) -> Self {
        ClusterSpec {
            node_link: LinkParams::ten_gbe(500),
            rack_uplink: LinkParams::ten_gbe(500),
            array_uplink: LinkParams::ten_gbe(500),
            tor: SwitchTemplate::ten_gbe_fast(),
            array: SwitchTemplate::ten_gbe_fast(),
            datacenter: SwitchTemplate::ten_gbe_fast(),
            ..Self::gbe(topology)
        }
    }

    /// Re-targets this spec onto a 3-tier fat-tree fabric, replacing the
    /// topology with the fat-tree's hierarchical view (edge switches as
    /// racks, pods as arrays) so partition planning, addressing, and
    /// metrics hierarchy carry over unchanged.
    #[must_use]
    pub fn with_fat_tree(mut self, ft: FatTreeConfig) -> Self {
        self.topology = ft.view();
        self.fabric = FabricKind::FatTree(ft);
        self
    }

    /// Enables ECN marking at `bytes` queued bytes per egress port on
    /// every switch level (the fabric half of DCTCP).
    #[must_use]
    pub fn with_ecn_threshold(mut self, bytes: u32) -> Self {
        self.tor.ecn_threshold = Some(bytes);
        self.array.ecn_threshold = Some(bytes);
        self.datacenter.ecn_threshold = Some(bytes);
        self
    }

    /// Adds extra port-to-port latency at every switch level (Figure 12's
    /// sweep).
    #[must_use]
    pub fn with_extra_switch_latency(mut self, extra: SimDuration) -> Self {
        self.tor.latency += extra;
        self.array.latency += extra;
        self.datacenter.latency += extra;
        self
    }

    /// A conservative parallel quantum that is safe for *any* partition
    /// cut of this spec: every inter-switch link guarantees at least its
    /// propagation delay between send and delivery.
    ///
    /// [`ClusterSpec::partition_plan`] derives a larger (better) quantum
    /// from the actual cut — store-and-forward egress also guarantees the
    /// serialization time of a minimum frame — so prefer
    /// [`Cluster::instantiate`] with [`RunMode::parallel`] over sizing the
    /// window by hand.
    pub fn safe_quantum(&self) -> SimDuration {
        self.rack_uplink.propagation.min(self.array_uplink.propagation)
    }

    /// Computes the rack-cut partition plan for `partitions` partitions:
    /// which partition owns each rack (servers + NICs + ToR), each array
    /// switch, and the datacenter switch, plus the cut's *lookahead* — the
    /// minimum latency any cross-partition message can have, which the
    /// parallel executor uses as its synchronization quantum.
    ///
    /// Racks are split into contiguous blocks (rack `r` goes to partition
    /// `r * partitions / racks`), so racks of one array stay together and
    /// the only links that can cross the cut are ToR↔array and array↔DC
    /// uplinks — the software analogue of DIABLO's rack-to-FPGA mapping,
    /// where only inter-FPGA transceiver links carry cross-model traffic.
    /// Each array switch joins the partition owning the majority of its
    /// racks; the datacenter switch joins partition 0.
    ///
    /// The lookahead is the minimum, over link *directions* that actually
    /// cross the cut, of that direction's guaranteed delivery latency:
    /// store-and-forward egress serializes at least a minimum-size frame
    /// before the wire's propagation delay, while cut-through egress only
    /// guarantees the propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn partition_plan(&self, partitions: usize) -> PartitionPlan {
        assert!(partitions > 0, "at least one partition required");
        let racks = self.topology.racks;
        let rpa = self.topology.racks_per_array;
        let arrays = racks.div_ceil(rpa);
        let rack_partition: Vec<u32> =
            (0..racks).map(|r| (r * partitions / racks) as u32).collect();
        // Majority vote over each array's (contiguous) racks; ties go to
        // the earliest partition, keeping the result order-independent.
        let array_partition: Vec<u32> = (0..arrays)
            .map(|a| {
                let members = &rack_partition[a * rpa..racks.min((a + 1) * rpa)];
                let mut best = members[0];
                let mut best_count = 0usize;
                for &cand in members {
                    let count = members.iter().filter(|&&p| p == cand).count();
                    if count > best_count || (count == best_count && cand < best) {
                        best = cand;
                        best_count = count;
                    }
                }
                best
            })
            .collect();
        let dc_partition = 0u32;

        // The guaranteed latency floor of one link direction depends on
        // the *sending* device's forwarding discipline.
        let floor = |params: LinkParams, egress: ForwardingMode| match egress {
            ForwardingMode::StoreAndForward => params.min_delivery_latency(),
            ForwardingMode::CutThrough => params.propagation,
        };
        let mut lookahead: Option<SimDuration> = None;
        let consider = |lookahead: &mut Option<SimDuration>, d: SimDuration| {
            *lookahead = Some(lookahead.map_or(d, |cur| cur.min(d)));
        };
        for (r, &rp) in rack_partition.iter().enumerate() {
            if rp != array_partition[r / rpa] {
                consider(&mut lookahead, floor(self.rack_uplink, self.tor.forwarding));
                consider(&mut lookahead, floor(self.rack_uplink, self.array.forwarding));
            }
        }
        if arrays > 1 {
            for &ap in &array_partition {
                if ap != dc_partition {
                    consider(&mut lookahead, floor(self.array_uplink, self.array.forwarding));
                    consider(&mut lookahead, floor(self.array_uplink, self.datacenter.forwarding));
                }
            }
        }
        // Nothing crosses (single partition, or a cut that happens to keep
        // every uplink internal): any positive quantum is safe; use the
        // floor over all uplink directions so behavior stays predictable.
        let lookahead = lookahead.unwrap_or_else(|| {
            floor(self.rack_uplink, self.tor.forwarding)
                .min(floor(self.rack_uplink, self.array.forwarding))
                .min(floor(self.array_uplink, self.array.forwarding))
                .min(floor(self.array_uplink, self.datacenter.forwarding))
        });
        PartitionPlan { partitions, rack_partition, array_partition, dc_partition, lookahead }
    }
}

/// A rack-cut partition assignment plus its derived lookahead; produced by
/// [`ClusterSpec::partition_plan`] and consumed by [`Cluster::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Partition count the plan was computed for.
    pub partitions: usize,
    /// Partition owning each rack (servers, NICs, and the ToR together).
    pub rack_partition: Vec<u32>,
    /// Partition owning each array switch.
    pub array_partition: Vec<u32>,
    /// Partition owning the datacenter switch (if the topology has one).
    pub dc_partition: u32,
    /// Minimum guaranteed latency of any partition-crossing link: the
    /// largest safe synchronization quantum for this cut.
    pub lookahead: SimDuration,
}

impl PartitionPlan {
    /// `true` if no link crosses the cut (every component in one
    /// partition).
    pub fn is_trivial(&self) -> bool {
        let first = self.rack_partition.first().copied().unwrap_or(0);
        self.rack_partition.iter().all(|&p| p == first)
            && self.array_partition.iter().all(|&p| p == first)
            && (self.array_partition.len() <= 1 || self.dc_partition == first)
    }
}

/// A constructed cluster: component ids plus the topology.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The validated topology.
    pub topo: Arc<Topology>,
    /// Per-node component ids (indexed by `NodeAddr`).
    pub nodes: Vec<ComponentId>,
    /// Per-switch component ids (topology switch indexing).
    pub switches: Vec<ComponentId>,
}

impl Cluster {
    /// Builds `spec` with a host resolved from `mode`: the recommended
    /// entry point. For [`RunMode::parallel`] (derived quantum) this
    /// computes the rack-cut [`PartitionPlan`] and sizes the executor's
    /// synchronization quantum from the cut's actual lookahead.
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology, or if an explicit quantum exceeds
    /// the cut's lookahead.
    pub fn instantiate(spec: &ClusterSpec, mode: RunMode) -> (SimHost, Cluster) {
        let mode = match mode {
            RunMode::Parallel { partitions, quantum: None, workers } => RunMode::Parallel {
                partitions,
                quantum: Some(spec.partition_plan(partitions).lookahead),
                workers,
            },
            m => m,
        };
        let mut host = SimHost::new(mode);
        let cluster = Cluster::build(&mut host, spec);
        (host, cluster)
    }

    /// Builds the cluster described by `spec` into `host`.
    ///
    /// Partition placement mirrors DIABLO's rack-to-FPGA mapping: each
    /// rack (its servers plus ToR) lives in one partition, racks are cut
    /// into contiguous blocks, and each array switch joins the partition
    /// holding most of its racks, so only ToR↔array and array↔DC uplinks
    /// can cross the cut (see [`ClusterSpec::partition_plan`]).
    ///
    /// # Panics
    ///
    /// Panics on an invalid topology, or if the host's quantum exceeds the
    /// cut's lookahead (cross-partition messages could then arrive inside
    /// a synchronization window).
    pub fn build(host: &mut SimHost, spec: &ClusterSpec) -> Cluster {
        let topo = match spec.fabric {
            FabricKind::Tree => Topology::new(spec.topology),
            FabricKind::FatTree(ft) => {
                assert_eq!(
                    spec.topology,
                    ft.view(),
                    "spec.topology must be the fat-tree's view: set both via \
                     ClusterSpec::with_fat_tree"
                );
                Topology::fat_tree(ft)
            }
        };
        let topo = Arc::new(topo.expect("invalid topology configuration"));
        let plan = spec.partition_plan(host.partition_count());
        if let SimHost::Parallel(p) = host {
            assert!(
                p.quantum() <= plan.lookahead,
                "quantum {} exceeds the partition cut's lookahead {}: use RunMode::parallel / \
                 Cluster::instantiate to derive the quantum from the cut",
                p.quantum(),
                plan.lookahead
            );
        }
        let root_rng = DetRng::new(spec.seed);

        // 1. Switches. On a fat-tree, edges reuse the ToR template, pods'
        // aggregation switches the array template, and cores the
        // datacenter template; every fat-tree switch routes with
        // flow-consistent ECMP instead of source routes.
        let ecmp = |role: ClosRole| {
            let (k, hosts_per_edge) =
                topo.fat_tree_params().expect("ECMP roles exist only on fat-trees");
            RoutingMode::Ecmp(EcmpConfig { k, hosts_per_edge, role })
        };
        let mut switches = Vec::with_capacity(topo.switch_count());
        for s in 0..topo.switch_count() {
            let (template, name, partition, routing) = match topo.switch_level(s) {
                SwitchLevel::Tor { rack } => {
                    let routing = if topo.is_fat_tree() {
                        ecmp(ClosRole::Edge { edge: rack })
                    } else {
                        RoutingMode::Source
                    };
                    (spec.tor, format!("tor{rack}"), plan.rack_partition[rack] as usize, routing)
                }
                SwitchLevel::Array { array } => (
                    spec.array,
                    format!("array{array}"),
                    plan.array_partition[array] as usize,
                    RoutingMode::Source,
                ),
                SwitchLevel::Datacenter => (
                    spec.datacenter,
                    "datacenter".to_string(),
                    plan.dc_partition as usize,
                    RoutingMode::Source,
                ),
                SwitchLevel::Aggregation { pod, index } => (
                    spec.array,
                    format!("agg{index}"),
                    plan.array_partition[pod] as usize,
                    ecmp(ClosRole::Aggregation { pod }),
                ),
                SwitchLevel::Core { index } => (
                    spec.datacenter,
                    format!("core{index}"),
                    plan.dc_partition as usize,
                    ecmp(ClosRole::Core),
                ),
            };
            let cfg = template.to_config(name, topo.switch_ports(s), routing);
            let sw = PacketSwitch::new(cfg, root_rng.derive(1_000_000 + s as u64));
            switches.push(host.add_in_partition(partition, Box::new(sw)));
        }

        // 2. Nodes.
        let mut nodes = Vec::with_capacity(topo.nodes());
        for n in 0..topo.nodes() {
            let addr = NodeAddr(n as u32);
            let (tor, port) = topo.node_attachment(addr);
            let uplink =
                PortPeer { component: switches[tor], port: PortNo(port), params: spec.node_link };
            let cfg = NodeConfig {
                addr,
                cpu: spec.cpu,
                cpi: 1,
                profile: spec.kernel.clone(),
                nic: spec.nic,
                loopback_delay: SimDuration::from_micros(5),
            };
            let node = ServerNode::new(cfg, uplink, topo.clone());
            let partition = plan.rack_partition[topo.rack_of(addr)] as usize;
            nodes.push(host.add_in_partition(partition, Box::new(node)));
        }

        // 3. Wire every switch port according to the topology.
        for s in 0..topo.switch_count() {
            for port in 0..topo.switch_ports(s) {
                let peer = match topo.peer_of(s, port) {
                    Endpoint::Node(n) => PortPeer {
                        component: nodes[n.index()],
                        port: PortNo(0),
                        params: spec.node_link,
                    },
                    Endpoint::Switch { index, port: pport } => {
                        let params = match (topo.switch_level(s), topo.switch_level(index)) {
                            (SwitchLevel::Array { .. }, SwitchLevel::Datacenter)
                            | (SwitchLevel::Datacenter, SwitchLevel::Array { .. })
                            | (SwitchLevel::Aggregation { .. }, SwitchLevel::Core { .. })
                            | (SwitchLevel::Core { .. }, SwitchLevel::Aggregation { .. }) => {
                                spec.array_uplink
                            }
                            _ => spec.rack_uplink,
                        };
                        PortPeer { component: switches[index], port: PortNo(pport), params }
                    }
                    Endpoint::Unwired => continue,
                };
                host.component_mut::<PacketSwitch>(switches[s])
                    .expect("switch vanished")
                    .connect_port(port, peer);
            }
        }

        Cluster { topo, nodes, switches }
    }

    /// Component id of a node.
    pub fn node(&self, addr: NodeAddr) -> ComponentId {
        self.nodes[addr.index()]
    }

    /// Spawns a guest process on `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn spawn(&self, host: &mut SimHost, addr: NodeAddr, process: Box<dyn Process>) {
        host.component_mut::<ServerNode>(self.node(addr)).expect("node vanished").spawn(process);
    }

    /// Reads a guest process's state on `addr`.
    pub fn process<'h, T: Any>(
        &self,
        host: &'h SimHost,
        addr: NodeAddr,
        tid: diablo_stack::process::Tid,
    ) -> Option<&'h T> {
        host.component::<ServerNode>(self.node(addr))?.kernel().process::<T>(tid)
    }

    /// Sums switch buffer drops over all switches.
    pub fn total_switch_drops(&self, host: &SimHost) -> u64 {
        self.switches
            .iter()
            .map(|&id| {
                host.component::<PacketSwitch>(id)
                    .map(|s| s.stats().drops_buffer.get())
                    .unwrap_or(0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_memcached_topology() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 4, racks_per_array: 2 });
        let mut host = SimHost::new(RunMode::Serial);
        let cluster = Cluster::build(&mut host, &spec);
        assert_eq!(cluster.nodes.len(), 16);
        assert_eq!(cluster.switches.len(), 4 + 2 + 1);
        // All ids distinct.
        let mut all: Vec<_> =
            cluster.nodes.iter().chain(cluster.switches.iter()).copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 16 + 7);
    }

    #[test]
    fn parallel_build_places_racks_in_partitions() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 2, racks_per_array: 2 });
        assert_eq!(spec.safe_quantum(), SimDuration::from_nanos(500));
        let (mut host, cluster) = Cluster::instantiate(&spec, RunMode::parallel(2));
        // Runs without quantum violations even with nothing scheduled.
        assert_eq!(cluster.nodes.len(), 8);
        host.run_until(SimTime::from_millis(1)).unwrap();
    }

    #[test]
    fn rack_cut_plan_keeps_arrays_together() {
        // 8 racks, 2 per array, 4 partitions: contiguous pairs of racks,
        // each array's two racks in the same partition, array switches
        // co-located with their racks.
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 8, servers_per_rack: 2, racks_per_array: 2 });
        let plan = spec.partition_plan(4);
        assert_eq!(plan.rack_partition, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(plan.array_partition, vec![0, 1, 2, 3]);
        assert_eq!(plan.dc_partition, 0);
        assert!(!plan.is_trivial());
        // Only array<->DC links cross, so the lookahead is the GbE
        // store-and-forward floor: 84 B at 1 Gbps (672 ns) + 500 ns.
        assert_eq!(plan.lookahead, SimDuration::from_nanos(1172));
        assert!(plan.lookahead > spec.safe_quantum());
    }

    #[test]
    fn cut_through_egress_lowers_the_lookahead_floor() {
        let topo = TopologyConfig { racks: 4, servers_per_rack: 2, racks_per_array: 2 };
        let g1 = ClusterSpec::gbe(topo).partition_plan(2);
        let g10 = ClusterSpec::ten_gbe(topo).partition_plan(2);
        // Cut-through guarantees only propagation (500 ns); GbE
        // store-and-forward also guarantees min-frame serialization.
        assert_eq!(g10.lookahead, SimDuration::from_nanos(500));
        assert!(g1.lookahead > g10.lookahead);
    }

    #[test]
    fn single_partition_plan_is_trivial_but_has_a_lookahead() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 2, racks_per_array: 2 });
        let plan = spec.partition_plan(1);
        assert!(plan.is_trivial());
        assert!(!plan.lookahead.is_zero());
    }

    #[test]
    fn more_partitions_than_racks_leaves_spares_empty() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 2, servers_per_rack: 2, racks_per_array: 1 });
        let plan = spec.partition_plan(8);
        assert_eq!(plan.rack_partition.len(), 2);
        assert!(plan.rack_partition.iter().all(|&p| (p as usize) < 8));
        let (mut host, _cluster) = Cluster::instantiate(&spec, RunMode::parallel(8));
        host.run_until(SimTime::from_micros(100)).unwrap();
    }

    #[test]
    #[should_panic(expected = "exceeds the partition cut's lookahead")]
    fn oversized_explicit_quantum_is_rejected() {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 2, racks_per_array: 2 });
        let mut host = SimHost::new(RunMode::Parallel {
            partitions: 2,
            quantum: Some(SimDuration::from_millis(1)),
            workers: None,
        });
        let _ = Cluster::build(&mut host, &spec);
    }

    #[test]
    fn ten_gbe_spec_has_faster_everything() {
        let topo = TopologyConfig::memcached_paper(16);
        let g1 = ClusterSpec::gbe(topo);
        let g10 = ClusterSpec::ten_gbe(topo);
        assert!(g10.node_link.bandwidth.bits_per_sec() > g1.node_link.bandwidth.bits_per_sec());
        assert!(g10.tor.latency < g1.tor.latency);
        let with_extra = g10.clone().with_extra_switch_latency(SimDuration::from_nanos(50));
        assert_eq!(with_extra.tor.latency, g10.tor.latency + SimDuration::from_nanos(50));
    }
}
