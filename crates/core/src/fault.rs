//! Deterministic fault schedules: scripted link flaps, switch outages, and
//! node crash/reboot cycles injected into a running cluster.
//!
//! A [`FaultPlan`] is a time-ordered list of fault directives parsed from a
//! small text format (one event per line) or built programmatically. Every
//! directive is delivered through the engine's external-event path as an
//! ordinary timer whose integer key encodes the whole fault
//! ([`NodeFault::timer_key`], [`SwitchFault::timer_key`]), so a plan applied
//! to a serial run and to a partition-parallel run of the same cluster
//! produces bit-identical results — fault events respect the quantum
//! protocol like any other event.
//!
//! # Plan format
//!
//! ```text
//! # down the uplink of node 3 at 500 ms, restore it at 1 s
//! 500ms  link-down  node3
//! 1s     link-up    node3
//! # halve node 2's uplink bandwidth with 1% loss
//! 750ms  link-degraded node2 bandwidth=0.5 loss=0.01
//! # power-cycle a whole rack switch
//! 2s     switch-down tor0
//! 2500ms switch-up   tor0
//! # crash node 4 and bring it back half a second later
//! 1200ms node-crash  node4 reboot=500ms
//! # flap node 5's link every 200 ms, 4 flaps total
//! 100ms  link-down  node5 repeat 200ms x4
//! 150ms  link-up    node5 repeat 200ms x4
//! ```
//!
//! Times accept `ns`, `us`, `ms`, and `s` suffixes. `#` starts a comment.
//! Node targets are `node<N>` (global node index); switch targets are
//! `tor<rack>`, `array<array>`, or `datacenter`. A trailing
//! `repeat <period> x<count>` suffix fires the event `count` times total,
//! spaced `period` apart — periodic link flaps and rolling crash waves
//! without hand-unrolled scripts.
//!
//! [`FaultPlan`] implements a canonical [`Display`](core::fmt::Display)
//! (every duration in nanoseconds) whose output reparses to an equal plan,
//! mirroring the arrival-spec grammar.
//!
//! Node link faults are symmetric: the directive lands both on the node's
//! kernel (NIC carrier/degrade) and on the node-facing port of its ToR, so
//! traffic dies in both directions the way a yanked cable kills both pairs.

use crate::cluster::{Cluster, SimHost};
use diablo_engine::parallel::ComponentHost;
use diablo_engine::time::{SimDuration, SimTime};
use diablo_net::link::fp20_encode;
use diablo_net::switch::SwitchFault;
use diablo_net::topology::SwitchLevel;
use diablo_net::NodeAddr;
use diablo_stack::kernel::NodeFault;
use std::collections::HashMap;

/// What a scheduled fault does to its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Node uplink loses carrier in both directions.
    LinkDown,
    /// Node uplink restored to its base parameters.
    LinkUp,
    /// Node uplink stays up but degraded in both directions.
    LinkDegraded {
        /// Bandwidth scale factor in `(0, 1]`.
        bandwidth_factor: f64,
        /// Frame-loss probability in `[0, 1]`.
        loss_rate: f64,
    },
    /// Power the target switch off (buffered frames flushed to the fault
    /// drop counter; arriving frames drop).
    SwitchDown,
    /// Power the target switch back on.
    SwitchUp,
    /// Kernel panic: sockets, connections, timers, and processes die and
    /// the NIC loses carrier until reboot.
    NodeCrash {
        /// When set, schedule the reboot this long after the crash.
        reboot_after: Option<SimDuration>,
    },
    /// Restart a crashed node (processes supporting
    /// [`reset`](diablo_stack::process::Process::reset) start over).
    NodeReboot,
}

/// Which component a fault hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// A server node, by global node index.
    Node(NodeAddr),
    /// A switch, by schedule name (`tor<rack>`, `array<array>`,
    /// `datacenter`).
    Switch(String),
}

impl core::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultTarget::Node(n) => write!(f, "node{}", n.0),
            FaultTarget::Switch(s) => f.write_str(s),
        }
    }
}

/// Periodic repetition of one scheduled fault: `repeat <period> x<count>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatSpec {
    /// Spacing between consecutive occurrences (strictly positive).
    pub period: SimDuration,
    /// Total occurrences including the first (at least 2 — a single
    /// occurrence is just the bare event).
    pub count: u32,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEventSpec {
    /// When the fault (first) fires.
    pub at: SimTime,
    /// The component it hits.
    pub target: FaultTarget,
    /// What it does.
    pub kind: FaultKind,
    /// Optional periodic repetition.
    pub repeat: Option<RepeatSpec>,
}

impl FaultEventSpec {
    /// Every instant this event fires at, in order: just `at` without a
    /// repeat, `at + k*period` for `k in 0..count` with one.
    pub fn occurrences(&self) -> impl Iterator<Item = SimTime> + '_ {
        let (period, count) = match self.repeat {
            Some(r) => (r.period, r.count),
            None => (SimDuration::ZERO, 1),
        };
        (0..count).map(move |k| self.at + period * u64::from(k))
    }
}

/// Why a plan failed to parse or apply.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A line of the plan text did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// A switch target named no switch in the cluster's topology.
    UnknownSwitch(String),
    /// A node target outside the cluster's node range.
    NodeOutOfRange(NodeAddr),
    /// The fault kind cannot apply to the target (e.g. `switch-down` on a
    /// node).
    BadTarget(String),
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::Parse { line, msg } => write!(f, "fault plan line {line}: {msg}"),
            FaultPlanError::UnknownSwitch(s) => write!(f, "fault plan: unknown switch `{s}`"),
            FaultPlanError::NodeOutOfRange(n) => {
                write!(f, "fault plan: node{} is outside the cluster", n.0)
            }
            FaultPlanError::BadTarget(msg) => write!(f, "fault plan: {msg}"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic, time-scripted schedule of fault injections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults, in file order (ties at one instant fire in
    /// this order).
    pub events: Vec<FaultEventSpec>,
}

/// Parses `250ms`-style durations (suffixes `ns`, `us`, `ms`, `s`).
fn parse_duration(tok: &str) -> Result<SimDuration, String> {
    // Longest suffixes first: `s` terminates all of them.
    let (num, scale_ns) = if let Some(n) = tok.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = tok.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = tok.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = tok.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("duration `{tok}` needs a ns/us/ms/s suffix"));
    };
    let v: f64 = num.parse().map_err(|_| format!("bad duration value `{num}`"))?;
    if v < 0.0 || !v.is_finite() {
        return Err(format!("duration `{tok}` must be finite and non-negative"));
    }
    Ok(SimDuration::from_nanos((v * scale_ns).round() as u64))
}

fn parse_fraction(key: &str, val: &str) -> Result<f64, String> {
    let v: f64 = val.parse().map_err(|_| format!("bad {key} value `{val}`"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{key} {v} outside [0, 1]"));
    }
    Ok(v)
}

fn parse_target(tok: &str) -> FaultTarget {
    if let Some(n) = tok.strip_prefix("node") {
        if let Ok(idx) = n.parse::<u32>() {
            return FaultTarget::Node(NodeAddr(idx));
        }
    }
    FaultTarget::Switch(tok.to_string())
}

impl FaultPlan {
    /// Parses the one-event-per-line plan format (see the module docs).
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let err = |msg: String| FaultPlanError::Parse { line, msg };
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let mut toks = body.split_whitespace();
            let at_tok = toks.next().expect("non-empty line has a first token");
            let at = SimTime::ZERO + parse_duration(at_tok).map_err(err)?;
            let op = toks.next().ok_or_else(|| err("missing fault op".into()))?;
            let target_tok = toks.next().ok_or_else(|| err("missing fault target".into()))?;
            let target = parse_target(target_tok);

            // The trailing `repeat <period> x<count>` suffix, if present,
            // separates key=value arguments from repetition.
            let rest: Vec<&str> = toks.collect();
            let (args, repeat) = match rest.iter().position(|t| *t == "repeat") {
                None => (&rest[..], None),
                Some(p) => {
                    let tail = &rest[p + 1..];
                    let [period_tok, count_tok] = tail else {
                        return Err(err(
                            "repeat needs `repeat <period> x<count>` (e.g. `repeat 200ms x4`)"
                                .into(),
                        ));
                    };
                    let period = parse_duration(period_tok).map_err(err)?;
                    if period == SimDuration::ZERO {
                        return Err(err("repeat period must be positive".into()));
                    }
                    let count: u32 = count_tok
                        .strip_prefix('x')
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| err(format!("bad repeat count `{count_tok}`")))?;
                    if count < 2 {
                        return Err(err("repeat count must be at least 2".into()));
                    }
                    (&rest[..p], Some(RepeatSpec { period, count }))
                }
            };
            let mut kv: HashMap<&str, &str> = HashMap::new();
            for tok in args {
                let (k, v) = tok
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, got `{tok}`")))?;
                kv.insert(k, v);
            }
            let mut take = |k: &str| kv.remove(k);

            let kind = match op {
                "link-down" => FaultKind::LinkDown,
                "link-up" => FaultKind::LinkUp,
                "link-degraded" => {
                    let bandwidth_factor = match take("bandwidth") {
                        Some(v) => parse_fraction("bandwidth", v).map_err(err)?,
                        None => 1.0,
                    };
                    let loss_rate = match take("loss") {
                        Some(v) => parse_fraction("loss", v).map_err(err)?,
                        None => 0.0,
                    };
                    if bandwidth_factor <= 0.0 {
                        return Err(err("bandwidth factor must be > 0".into()));
                    }
                    FaultKind::LinkDegraded { bandwidth_factor, loss_rate }
                }
                "switch-down" => FaultKind::SwitchDown,
                "switch-up" => FaultKind::SwitchUp,
                "node-crash" => {
                    let reboot_after = match take("reboot") {
                        Some(v) => Some(parse_duration(v).map_err(err)?),
                        None => None,
                    };
                    FaultKind::NodeCrash { reboot_after }
                }
                "node-reboot" => FaultKind::NodeReboot,
                other => return Err(err(format!("unknown fault op `{other}`"))),
            };
            if let Some(k) = kv.keys().next() {
                return Err(err(format!("unexpected argument `{k}` for `{op}`")));
            }

            // Target/kind compatibility is checkable right here: node ops
            // need node targets and switch ops need switch targets.
            let node_op = !matches!(kind, FaultKind::SwitchDown | FaultKind::SwitchUp);
            match (&target, node_op) {
                (FaultTarget::Node(_), true) | (FaultTarget::Switch(_), false) => {}
                (FaultTarget::Switch(_), true) => {
                    return Err(err(format!("`{op}` needs a node target, got `{target_tok}`")));
                }
                (FaultTarget::Node(_), false) => {
                    return Err(err(format!("`{op}` needs a switch target, got `{target_tok}`")));
                }
            }

            events.push(FaultEventSpec { at, target, kind, repeat });
        }
        Ok(FaultPlan { events })
    }

    /// The latest instant at which this plan fires anything (including
    /// scheduled reboots and repeat occurrences). `SimTime::ZERO` for an
    /// empty plan.
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .flat_map(|e| {
                let tail = match e.kind {
                    FaultKind::NodeCrash { reboot_after: Some(d) } => d,
                    _ => SimDuration::ZERO,
                };
                e.occurrences().map(move |at| at + tail)
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Injects every scheduled fault into `host` as external timer events.
    ///
    /// Call once, after [`Cluster::instantiate`] and before running; every
    /// event time must be at or after the host's current time. Node link
    /// faults land symmetrically on the node's kernel and on the
    /// node-facing ToR port; `node-crash reboot=<d>` also schedules the
    /// matching reboot injection.
    pub fn apply(&self, host: &mut SimHost, cluster: &Cluster) -> Result<(), FaultPlanError> {
        // Schedule-name → topology switch index (`tor0`, `array1`, ...).
        let mut switch_names: HashMap<String, usize> = HashMap::new();
        for s in 0..cluster.switches.len() {
            let name = match cluster.topo.switch_level(s) {
                SwitchLevel::Tor { rack } => format!("tor{rack}"),
                SwitchLevel::Array { array } => format!("array{array}"),
                SwitchLevel::Datacenter => "datacenter".to_string(),
                SwitchLevel::Aggregation { index, .. } => format!("agg{index}"),
                SwitchLevel::Core { index } => format!("core{index}"),
            };
            switch_names.insert(name, s);
        }

        for ev in &self.events {
            for at in ev.occurrences() {
                match (&ev.target, ev.kind) {
                    (FaultTarget::Node(addr), kind) => {
                        let node_id = *cluster
                            .nodes
                            .get(addr.index())
                            .ok_or(FaultPlanError::NodeOutOfRange(*addr))?;
                        let (tor, port) = cluster.topo.node_attachment(*addr);
                        let tor_id = cluster.switches[tor];
                        match kind {
                            FaultKind::LinkDown => {
                                host.inject_timer(at, node_id, NodeFault::LinkDown.timer_key());
                                host.inject_timer(
                                    at,
                                    tor_id,
                                    SwitchFault::PortDown { port }.timer_key(),
                                );
                            }
                            FaultKind::LinkUp => {
                                host.inject_timer(at, node_id, NodeFault::LinkUp.timer_key());
                                host.inject_timer(
                                    at,
                                    tor_id,
                                    SwitchFault::PortUp { port }.timer_key(),
                                );
                            }
                            FaultKind::LinkDegraded { bandwidth_factor, loss_rate } => {
                                let bw = fp20_encode(bandwidth_factor).max(1);
                                let loss = fp20_encode(loss_rate);
                                host.inject_timer(
                                    at,
                                    node_id,
                                    NodeFault::LinkDegraded {
                                        bandwidth_factor_fp20: bw,
                                        loss_rate_fp20: loss,
                                    }
                                    .timer_key(),
                                );
                                host.inject_timer(
                                    at,
                                    tor_id,
                                    SwitchFault::PortDegraded {
                                        port,
                                        bandwidth_factor_fp20: bw,
                                        loss_rate_fp20: loss,
                                    }
                                    .timer_key(),
                                );
                            }
                            FaultKind::NodeCrash { reboot_after } => {
                                host.inject_timer(at, node_id, NodeFault::Crash.timer_key());
                                if let Some(d) = reboot_after {
                                    host.inject_timer(
                                        at + d,
                                        node_id,
                                        NodeFault::Reboot.timer_key(),
                                    );
                                }
                            }
                            FaultKind::NodeReboot => {
                                host.inject_timer(at, node_id, NodeFault::Reboot.timer_key());
                            }
                            FaultKind::SwitchDown | FaultKind::SwitchUp => {
                                return Err(FaultPlanError::BadTarget(format!(
                                    "{:?} cannot target node{}",
                                    ev.kind, addr.0
                                )));
                            }
                        }
                    }
                    (FaultTarget::Switch(name), kind) => {
                        let &idx = switch_names
                            .get(name.as_str())
                            .ok_or_else(|| FaultPlanError::UnknownSwitch(name.clone()))?;
                        let sw_id = cluster.switches[idx];
                        let fault = match kind {
                            FaultKind::SwitchDown => SwitchFault::SwitchDown,
                            FaultKind::SwitchUp => SwitchFault::SwitchUp,
                            other => {
                                return Err(FaultPlanError::BadTarget(format!(
                                    "{other:?} cannot target switch `{name}`"
                                )));
                            }
                        };
                        host.inject_timer(at, sw_id, fault.timer_key());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Canonical plan text: one event per line in file order, every duration
/// rendered as integer nanoseconds (the grammar's exact grid), so
/// `FaultPlan::parse(&plan.to_string())` reproduces an equal plan.
impl core::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for ev in &self.events {
            write!(f, "{}ns", ev.at.as_nanos())?;
            match ev.kind {
                FaultKind::LinkDown => write!(f, " link-down {}", ev.target)?,
                FaultKind::LinkUp => write!(f, " link-up {}", ev.target)?,
                FaultKind::LinkDegraded { bandwidth_factor, loss_rate } => write!(
                    f,
                    " link-degraded {} bandwidth={bandwidth_factor} loss={loss_rate}",
                    ev.target
                )?,
                FaultKind::SwitchDown => write!(f, " switch-down {}", ev.target)?,
                FaultKind::SwitchUp => write!(f, " switch-up {}", ev.target)?,
                FaultKind::NodeCrash { reboot_after } => {
                    write!(f, " node-crash {}", ev.target)?;
                    if let Some(d) = reboot_after {
                        write!(f, " reboot={}ns", d.as_nanos())?;
                    }
                }
                FaultKind::NodeReboot => write!(f, " node-reboot {}", ev.target)?,
            }
            if let Some(r) = ev.repeat {
                write!(f, " repeat {}ns x{}", r.period.as_nanos(), r.count)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let plan = FaultPlan::parse(
            "# schedule\n\
             500ms  link-down  node3\n\
             1s     link-up    node3   # restore\n\
             750ms  link-degraded node2 bandwidth=0.5 loss=0.01\n\
             2s     switch-down tor0\n\
             2500ms switch-up   tor0\n\
             1200ms node-crash  node4 reboot=500ms\n\
             \n\
             4s     node-reboot node4\n",
        )
        .expect("plan parses");
        assert_eq!(plan.events.len(), 7);
        assert_eq!(plan.events[0].at, SimTime::from_millis(500));
        assert_eq!(plan.events[0].target, FaultTarget::Node(NodeAddr(3)));
        assert_eq!(plan.events[0].kind, FaultKind::LinkDown);
        assert_eq!(
            plan.events[2].kind,
            FaultKind::LinkDegraded { bandwidth_factor: 0.5, loss_rate: 0.01 }
        );
        assert_eq!(plan.events[3].target, FaultTarget::Switch("tor0".into()));
        assert_eq!(
            plan.events[5].kind,
            FaultKind::NodeCrash { reboot_after: Some(SimDuration::from_millis(500)) }
        );
        assert_eq!(plan.horizon(), SimTime::from_secs(4));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("500 link-down node0", "suffix"),
            ("500ms link-down", "missing fault target"),
            ("500ms frobnicate node0", "unknown fault op"),
            ("500ms link-down tor0", "needs a node target"),
            ("500ms switch-down node0", "needs a switch target"),
            ("500ms link-degraded node0 loss=1.5", "outside [0, 1]"),
            ("500ms link-degraded node0 bandwidth=0", "must be > 0"),
            ("500ms node-crash node0 bogus=1", "unexpected argument"),
        ] {
            let e = FaultPlan::parse(text).expect_err(text);
            let msg = e.to_string();
            assert!(msg.contains(needle), "`{text}` gave `{msg}`, wanted `{needle}`");
        }
    }

    /// "NaN" and "inf" are valid `f64` literals, so the duration parser
    /// must reject them explicitly — a schedule stamped at NaN
    /// nanoseconds would otherwise round into an arbitrary fire time.
    #[test]
    fn rejects_non_finite_and_negative_durations() {
        for tok in ["NaNms", "nanms", "infs", "-infms", "-5ms", "-0.5us"] {
            let err = parse_duration(tok).expect_err(tok);
            assert!(err.contains("finite and non-negative"), "{tok:?} -> {err:?}");
        }
        // Via the public grammar, in both the timestamp column and the
        // reboot argument.
        for text in [
            "NaNms link-down node0",
            "infs link-down node0",
            "-5ms link-down node0",
            "500ms node-crash node0 reboot=NaNms",
            "500ms node-crash node0 reboot=-5ms",
        ] {
            let e = FaultPlan::parse(text).expect_err(text).to_string();
            assert!(e.contains("finite and non-negative"), "`{text}` gave `{e}`");
        }
    }

    #[test]
    fn parses_repeat_suffix_and_expands_occurrences() {
        let plan = FaultPlan::parse(
            "100ms link-down node5 repeat 200ms x4\n\
             1200ms node-crash node4 reboot=50ms repeat 300ms x2\n",
        )
        .expect("repeat plan parses");
        assert_eq!(
            plan.events[0].repeat,
            Some(RepeatSpec { period: SimDuration::from_millis(200), count: 4 })
        );
        let at: Vec<SimTime> = plan.events[0].occurrences().collect();
        assert_eq!(
            at,
            [100, 300, 500, 700].map(SimTime::from_millis).to_vec(),
            "occurrences are at + k*period"
        );
        // Horizon covers the last occurrence plus its reboot tail:
        // 1200ms + 300ms + 50ms.
        assert_eq!(plan.horizon(), SimTime::from_millis(1550));
        // A bare event fires exactly once.
        let single = FaultPlan::parse("7ms link-up node1").unwrap();
        assert_eq!(single.events[0].occurrences().count(), 1);
    }

    #[test]
    fn rejects_malformed_repeats() {
        for (text, needle) in [
            ("100ms link-down node5 repeat", "repeat needs"),
            ("100ms link-down node5 repeat 200ms", "repeat needs"),
            ("100ms link-down node5 repeat 200ms x4 extra", "repeat needs"),
            ("100ms link-down node5 repeat 200 x4", "suffix"),
            ("100ms link-down node5 repeat -5ms x4", "finite and non-negative"),
            ("100ms link-down node5 repeat 0ms x4", "must be positive"),
            ("100ms link-down node5 repeat 200ms 4", "bad repeat count"),
            ("100ms link-down node5 repeat 200ms xzero", "bad repeat count"),
            ("100ms link-down node5 repeat 200ms x1", "at least 2"),
            ("100ms link-down node5 repeat 200ms x0", "at least 2"),
        ] {
            let e = FaultPlan::parse(text).expect_err(text);
            let msg = e.to_string();
            assert!(msg.contains(needle), "`{text}` gave `{msg}`, wanted `{needle}`");
        }
    }

    /// The canonical `Display` form reparses to an equal plan, like the
    /// arrival grammar's.
    #[test]
    fn display_round_trips() {
        let plan = FaultPlan::parse(
            "# everything the grammar can express\n\
             500ms  link-down  node3\n\
             1s     link-up    node3\n\
             750ms  link-degraded node2 bandwidth=0.5 loss=0.01\n\
             2s     switch-down tor0\n\
             2500ms switch-up   tor0\n\
             1200ms node-crash  node4 reboot=500ms\n\
             4s     node-reboot node4\n\
             100ms  link-down   node5 repeat 200ms x4\n\
             150ms  link-up     node5 repeat 200ms x4\n\
             20ms   node-crash  node6 reboot=35ms repeat 240ms x2\n",
        )
        .expect("plan parses");
        let text = plan.to_string();
        let reparsed = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("canonical form must reparse: {e}\n{text}"));
        assert_eq!(reparsed, plan, "round-trip changed the plan:\n{text}");
        // Canonical output is itself a fixed point.
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn bundled_rolling_crash_plan_parses_and_round_trips() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/rolling_crash.fplan"
        ))
        .expect("scenarios/rolling_crash.fplan exists");
        let plan = FaultPlan::parse(&text).expect("bundled plan parses");
        assert!(
            plan.events.iter().any(|e| e.repeat.is_some()),
            "rolling_crash.fplan should exercise the repeat suffix"
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn apply_validates_targets() {
        use crate::cluster::{ClusterSpec, RunMode};
        use diablo_net::topology::TopologyConfig;
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 2, servers_per_rack: 2, racks_per_array: 2 });
        let (mut host, cluster) = Cluster::instantiate(&spec, RunMode::Serial);
        let bad_node = FaultPlan::parse("1ms link-down node99").unwrap();
        assert_eq!(
            bad_node.apply(&mut host, &cluster),
            Err(FaultPlanError::NodeOutOfRange(NodeAddr(99)))
        );
        let bad_switch = FaultPlan::parse("1ms switch-down tor7").unwrap();
        assert_eq!(
            bad_switch.apply(&mut host, &cluster),
            Err(FaultPlanError::UnknownSwitch("tor7".into()))
        );
        let good = FaultPlan::parse("1ms link-down node0\n2ms switch-down tor1").unwrap();
        good.apply(&mut host, &cluster).expect("valid plan applies");
    }
}
