//! # diablo-core — the DIABLO simulator product
//!
//! Ties the substrates together into the tool the paper describes: build a
//! warehouse-scale array (servers + NICs + three switch levels) from a
//! [`cluster::ClusterSpec`], run it deterministically on one thread or
//! partition-parallel across many ([`cluster::SimHost`]), drive any
//! [`experiment::Workload`] through the one shared lifecycle
//! ([`experiment::ExperimentHarness`]), run the paper's workloads
//! ([`experiments`]), and render results ([`report`]). The [`survey`]
//! module carries the paper's motivation data (Figure 2 / Table 1).

#![warn(missing_docs)]

pub mod cluster;
pub mod experiment;
pub mod experiments;
pub mod fault;
pub mod observe;
pub mod report;
pub mod snapshot;
pub mod survey;
pub mod sweep;

pub use cluster::{Cluster, ClusterSpec, FabricKind, RunMode, SimHost, SwitchTemplate};
pub use diablo_apps::arrival::{ArrivalError, ArrivalProcess, ArrivalSpec, SloStats};
pub use diablo_apps::control::{ControlConfig, ControlReport};
pub use experiment::{
    CheckpointPolicy, ExperimentBase, ExperimentError, ExperimentHarness, RunEnvelope, Workload,
};
pub use experiments::{
    run_incast, run_memcached, run_partition_aggregate, try_run_incast, try_run_incast_with,
    try_run_memcached, try_run_memcached_with, try_run_partition_aggregate,
    try_run_partition_aggregate_with, warm_incast, warm_memcached, warm_partition_aggregate,
    IncastClientKind, IncastConfig, IncastResult, McExperimentConfig, McExperimentResult,
    PaExperimentConfig, PaExperimentResult,
};
pub use fault::{FaultEventSpec, FaultKind, FaultPlan, FaultPlanError, FaultTarget, RepeatSpec};
pub use observe::DropAccounting;
pub use sweep::{
    SweepAxis, SweepEngine, SweepError, SweepOutcome, SweepPoint, SweepRunner, SweepSpec,
    SweepTable,
};
