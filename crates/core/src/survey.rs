//! The paper's motivation data: testbed sizes and workload types in
//! SIGCOMM datacenter-networking papers, 2008–2013 (Figure 2, Table 1).
//!
//! The paper reports the summary statistics — a median physical testbed of
//! 16 servers and 6 switches, and a 16/3/2 split between microbenchmark,
//! trace and application workloads over 21 surveyed papers — without
//! listing the underlying entries. The dataset below is a reconstruction
//! with exactly those summary statistics; individual rows are
//! representative, not attributions.

/// Workload category used in an evaluation (Table 1's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadType {
    /// Synthetic microbenchmarks or pattern generators.
    Microbenchmark,
    /// Production trace replay.
    Trace,
    /// Real applications.
    Application,
}

impl core::fmt::Display for WorkloadType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadType::Microbenchmark => write!(f, "Microbenchmark"),
            WorkloadType::Trace => write!(f, "Trace"),
            WorkloadType::Application => write!(f, "Application"),
        }
    }
}

/// One surveyed evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurveyEntry {
    /// Publication year.
    pub year: u16,
    /// Physical servers (VMs counted as physical, per the paper's
    /// generous accounting).
    pub servers: u32,
    /// Maximum switches.
    pub switches: u32,
    /// Workload category.
    pub workload: WorkloadType,
}

/// The reconstructed survey (21 entries; medians: 16 servers, 6 switches;
/// workload split 16/3/2).
pub fn sigcomm_survey() -> Vec<SurveyEntry> {
    use WorkloadType::*;
    vec![
        SurveyEntry { year: 2008, servers: 4, switches: 2, workload: Microbenchmark },
        SurveyEntry { year: 2008, servers: 10, switches: 3, workload: Microbenchmark },
        SurveyEntry { year: 2009, servers: 16, switches: 5, workload: Microbenchmark },
        SurveyEntry { year: 2009, servers: 40, switches: 14, workload: Microbenchmark },
        SurveyEntry { year: 2009, servers: 16, switches: 10, workload: Microbenchmark },
        SurveyEntry { year: 2009, servers: 3, switches: 1, workload: Microbenchmark },
        SurveyEntry { year: 2010, servers: 24, switches: 9, workload: Microbenchmark },
        SurveyEntry { year: 2010, servers: 16, switches: 6, workload: Trace },
        SurveyEntry { year: 2010, servers: 80, switches: 16, workload: Application },
        SurveyEntry { year: 2011, servers: 8, switches: 2, workload: Microbenchmark },
        SurveyEntry { year: 2011, servers: 45, switches: 8, workload: Microbenchmark },
        SurveyEntry { year: 2011, servers: 12, switches: 4, workload: Microbenchmark },
        SurveyEntry { year: 2011, servers: 100, switches: 20, workload: Trace },
        SurveyEntry { year: 2012, servers: 16, switches: 6, workload: Microbenchmark },
        SurveyEntry { year: 2012, servers: 20, switches: 7, workload: Microbenchmark },
        SurveyEntry { year: 2012, servers: 6, switches: 2, workload: Microbenchmark },
        SurveyEntry { year: 2012, servers: 64, switches: 12, workload: Application },
        SurveyEntry { year: 2013, servers: 14, switches: 5, workload: Microbenchmark },
        SurveyEntry { year: 2013, servers: 32, switches: 10, workload: Microbenchmark },
        SurveyEntry { year: 2013, servers: 5, switches: 1, workload: Microbenchmark },
        SurveyEntry { year: 2013, servers: 18, switches: 6, workload: Trace },
    ]
}

fn median(mut v: Vec<u32>) -> u32 {
    v.sort_unstable();
    v[v.len() / 2]
}

/// Median physical-testbed server count (the paper: 16).
pub fn median_servers(entries: &[SurveyEntry]) -> u32 {
    median(entries.iter().map(|e| e.servers).collect())
}

/// Median switch count (the paper: 6).
pub fn median_switches(entries: &[SurveyEntry]) -> u32 {
    median(entries.iter().map(|e| e.switches).collect())
}

/// Paper counts per workload type (Table 1: 16 / 3 / 2).
pub fn workload_counts(entries: &[SurveyEntry]) -> (usize, usize, usize) {
    let count = |w: WorkloadType| entries.iter().filter(|e| e.workload == w).count();
    (
        count(WorkloadType::Microbenchmark),
        count(WorkloadType::Trace),
        count(WorkloadType::Application),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_match_the_paper() {
        let s = sigcomm_survey();
        assert_eq!(s.len(), 21);
        assert_eq!(median_servers(&s), 16, "median testbed servers");
        assert_eq!(median_switches(&s), 6, "median testbed switches");
        assert_eq!(workload_counts(&s), (16, 3, 2), "Table 1 split");
    }

    #[test]
    fn all_entries_within_survey_years() {
        for e in sigcomm_survey() {
            assert!((2008..=2013).contains(&e.year));
            assert!(e.servers > 0);
        }
    }
}
