//! The parallel sweep orchestrator: run a grid of experiment points
//! over OS threads, each optionally seeded from one shared warmed
//! checkpoint, with resumable progress and a single merged results
//! table.
//!
//! A [`SweepSpec`] is parsed from a small line-oriented text format in
//! the same family as the fault-plan and arrival-spec grammars:
//!
//! ```text
//! # memcached protocol/kernel grid, warmed 2 ms in
//! scenario memcached
//! warm 2ms
//! jobs 4
//! set --racks 2
//! set --requests 60
//! axis --proto = udp, tcp
//! axis --kernel = 2.6, 3.5
//! ```
//!
//! Directives: `scenario <name>` (required, once) names the workload;
//! `warm <duration>` (optional) asks the engine to write one shared
//! checkpoint at that simulated instant before fanning out; `jobs <n>`
//! (optional) sets the default worker-thread count; `set <flag>
//! [value]` fixes an option for every point; `axis <flag> = v1, v2, …`
//! sweeps one (at least one axis is required). Durations accept `ns`,
//! `us`, `ms`, and `s` suffixes; `#` starts a comment. The grid is the
//! cartesian product of the axes, first axis outermost, and
//! [`SweepSpec`] implements a canonical [`Display`](core::fmt::Display)
//! whose output reparses to an equal spec.
//!
//! The [`SweepEngine`] owns execution: it fans the points over a pool
//! of OS threads (each point is its own full simulation, so points are
//! embarrassingly parallel), records every finished point in a progress
//! file keyed by a digest of the spec (rerunning the same sweep after
//! an interruption re-runs only the missing points; editing the spec
//! invalidates the old progress), and merges everything into one
//! [`SweepTable`] in grid order. A failing point records its error in
//! its row; the engine keeps going.
//!
//! The engine is workload-agnostic: callers implement [`SweepRunner`]
//! (warm the shared checkpoint, run one point) and the front end maps
//! axis flags onto its own configuration — see `wsc_sim sweep`.

use crate::snapshot::fingerprint;
use diablo_engine::time::SimDuration;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// ====================================================================
// Errors
// ====================================================================

/// Why a sweep spec failed to parse or a sweep failed to run.
#[derive(Debug)]
pub enum SweepError {
    /// A line of the spec text did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        msg: String,
    },
    /// The spec parsed line-by-line but is not a runnable sweep
    /// (missing scenario, no axes, …) or the engine was misconfigured
    /// (a `warm` directive without a checkpoint path).
    Invalid(String),
    /// Filesystem failure on the progress file or checkpoint path.
    Io {
        /// The offending path.
        path: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The shared warm-up run failed, so no point could be seeded.
    Warm(String),
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SweepError::Parse { line, msg } => write!(f, "sweep spec line {line}: {msg}"),
            SweepError::Invalid(msg) => write!(f, "sweep spec: {msg}"),
            SweepError::Io { path, error } => write!(f, "sweep: `{path}`: {error}"),
            SweepError::Warm(msg) => write!(f, "sweep warm-up failed: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

// ====================================================================
// The spec
// ====================================================================

/// One swept flag and the values its column takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepAxis {
    /// The CLI flag (e.g. `--proto`).
    pub key: String,
    /// The values to sweep, in file order.
    pub values: Vec<String>,
}

/// A parsed sweep grid: scenario, optional warm instant, fixed options,
/// and the swept axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The workload/subcommand every point runs.
    pub scenario: String,
    /// When set, warm one shared checkpoint at this simulated instant
    /// and seed every point from it.
    pub warm: Option<SimDuration>,
    /// Default worker-thread count (`jobs` directive).
    pub jobs: Option<usize>,
    /// Options applied to every point: `(flag, value)`, value `None`
    /// for bare flags.
    pub fixed: Vec<(String, Option<String>)>,
    /// The swept axes, first axis outermost in the grid.
    pub axes: Vec<SweepAxis>,
}

/// One cell assignment of the grid: the point's index in grid order and
/// its `(flag, value)` pair per axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Position in grid order (first axis outermost).
    pub index: usize,
    /// One `(axis flag, value)` pair per axis, in axis order.
    pub cells: Vec<(String, String)>,
}

/// Parses `250ms`-style durations (suffixes `ns`, `us`, `ms`, `s`) —
/// the duration token format shared by the sweep grammar and the
/// `--checkpoint-at` CLI flag.
///
/// # Errors
///
/// A human-readable description of the malformed token.
pub fn parse_duration(tok: &str) -> Result<SimDuration, String> {
    let (num, scale_ns) = if let Some(n) = tok.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = tok.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = tok.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = tok.strip_suffix('s') {
        (n, 1e9)
    } else {
        return Err(format!("duration `{tok}` needs a ns/us/ms/s suffix"));
    };
    let v: f64 = num.parse().map_err(|_| format!("bad duration value `{num}`"))?;
    if v < 0.0 || !v.is_finite() {
        return Err(format!("duration `{tok}` must be finite and non-negative"));
    }
    Ok(SimDuration::from_nanos((v * scale_ns).round() as u64))
}

impl SweepSpec {
    /// Parses the text format described in the module docs.
    ///
    /// # Errors
    ///
    /// [`SweepError::Parse`] naming the offending line,
    /// [`SweepError::Invalid`] when the lines parse but do not make a
    /// runnable sweep.
    pub fn parse(text: &str) -> Result<SweepSpec, SweepError> {
        let mut scenario: Option<String> = None;
        let mut warm: Option<SimDuration> = None;
        let mut jobs: Option<usize> = None;
        let mut fixed: Vec<(String, Option<String>)> = Vec::new();
        let mut axes: Vec<SweepAxis> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let err = |msg: String| SweepError::Parse { line, msg };
            let body = raw.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let (head, rest) = match body.split_once(char::is_whitespace) {
                Some((h, r)) => (h, r.trim()),
                None => (body, ""),
            };
            match head {
                "scenario" => {
                    if scenario.is_some() {
                        return Err(err("duplicate `scenario` directive".into()));
                    }
                    if rest.is_empty() || rest.split_whitespace().count() != 1 {
                        return Err(err("expected `scenario <name>`".into()));
                    }
                    scenario = Some(rest.to_string());
                }
                "warm" => {
                    if warm.is_some() {
                        return Err(err("duplicate `warm` directive".into()));
                    }
                    warm = Some(parse_duration(rest).map_err(err)?);
                }
                "jobs" => {
                    if jobs.is_some() {
                        return Err(err("duplicate `jobs` directive".into()));
                    }
                    let n: usize =
                        rest.parse().map_err(|_| err(format!("bad jobs count `{rest}`")))?;
                    if n == 0 {
                        return Err(err("jobs must be at least 1".into()));
                    }
                    jobs = Some(n);
                }
                "set" => {
                    let mut toks = rest.split_whitespace();
                    let Some(key) = toks.next() else {
                        return Err(err("expected `set <flag> [value]`".into()));
                    };
                    let value = toks.next().map(str::to_string);
                    if toks.next().is_some() {
                        return Err(err(format!("`set {key}` takes at most one value")));
                    }
                    fixed.push((key.to_string(), value));
                }
                "axis" => {
                    let Some((key, vals)) = rest.split_once('=') else {
                        return Err(err("expected `axis <flag> = v1, v2, ...`".into()));
                    };
                    let key = key.trim();
                    if key.is_empty() || key.split_whitespace().count() != 1 {
                        return Err(err("axis flag must be a single token".into()));
                    }
                    if axes.iter().any(|a| a.key == key) {
                        return Err(err(format!("duplicate axis `{key}`")));
                    }
                    let values: Vec<String> = vals
                        .split(',')
                        .map(str::trim)
                        .filter(|v| !v.is_empty())
                        .map(str::to_string)
                        .collect();
                    if values.is_empty() {
                        return Err(err(format!("axis `{key}` has no values")));
                    }
                    for v in &values {
                        if v.split_whitespace().count() != 1 {
                            return Err(err(format!("axis value `{v}` must be a single token")));
                        }
                    }
                    axes.push(SweepAxis { key: key.to_string(), values });
                }
                other => {
                    return Err(err(format!(
                        "unknown directive `{other}` (expected scenario/warm/jobs/set/axis)"
                    )));
                }
            }
        }
        let Some(scenario) = scenario else {
            return Err(SweepError::Invalid("missing `scenario` directive".into()));
        };
        if axes.is_empty() {
            return Err(SweepError::Invalid("a sweep needs at least one `axis`".into()));
        }
        Ok(SweepSpec { scenario, warm, jobs, fixed, axes })
    }

    /// Every grid point, in grid order: the cartesian product of the
    /// axes with the first axis outermost.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut grids: Vec<Vec<(String, String)>> = vec![Vec::new()];
        for ax in &self.axes {
            let mut next = Vec::with_capacity(grids.len() * ax.values.len());
            for prefix in &grids {
                for v in &ax.values {
                    let mut cells = prefix.clone();
                    cells.push((ax.key.clone(), v.clone()));
                    next.push(cells);
                }
            }
            grids = next;
        }
        grids.into_iter().enumerate().map(|(index, cells)| SweepPoint { index, cells }).collect()
    }

    /// The full CLI argument vector for one point: the fixed options
    /// followed by the point's axis assignments.
    pub fn point_args(&self, point: &SweepPoint) -> Vec<String> {
        let mut args = Vec::new();
        for (k, v) in &self.fixed {
            args.push(k.clone());
            if let Some(v) = v {
                args.push(v.clone());
            }
        }
        for (k, v) in &point.cells {
            args.push(k.clone());
            args.push(v.clone());
        }
        args
    }

    /// The warm-leg CLI argument vector: the fixed options only (axes
    /// take their scenario defaults during warm-up — the checkpoint
    /// must not bake any swept knob in).
    pub fn warm_args(&self) -> Vec<String> {
        let mut args = Vec::new();
        for (k, v) in &self.fixed {
            args.push(k.clone());
            if let Some(v) = v {
                args.push(v.clone());
            }
        }
        args
    }

    /// Stable digest of the canonical spec text, used to key progress
    /// lines: editing the spec orphans old progress instead of
    /// resuming the wrong grid.
    pub fn digest(&self) -> u64 {
        fingerprint([self.to_string()])
    }
}

impl core::fmt::Display for SweepSpec {
    /// Canonical text whose reparse equals the spec (durations in
    /// nanoseconds).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "scenario {}", self.scenario)?;
        if let Some(w) = self.warm {
            writeln!(f, "warm {}ns", w.as_nanos())?;
        }
        if let Some(j) = self.jobs {
            writeln!(f, "jobs {j}")?;
        }
        for (k, v) in &self.fixed {
            match v {
                Some(v) => writeln!(f, "set {k} {v}")?,
                None => writeln!(f, "set {k}")?,
            }
        }
        for ax in &self.axes {
            writeln!(f, "axis {} = {}", ax.key, ax.values.join(", "))?;
        }
        Ok(())
    }
}

// ====================================================================
// The runner contract
// ====================================================================

/// What the sweep engine asks of a front end: warm the shared
/// checkpoint once, then run individual points (in parallel, so
/// implementations must be [`Sync`]).
pub trait SweepRunner: Sync {
    /// Runs the scenario's warm-up prefix to simulated instant `at`
    /// and writes the shared checkpoint to `path`. Called at most once
    /// per sweep, before any point runs, and only when the spec has a
    /// `warm` directive and no checkpoint already exists at `path`.
    ///
    /// # Errors
    ///
    /// A human-readable description; it aborts the whole sweep.
    fn warm(&self, at: SimDuration, path: &Path) -> Result<(), String>;

    /// Runs one grid point — restoring `warm` first when given — and
    /// returns its result columns as `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// A human-readable description; it is recorded in the point's row
    /// and the sweep continues.
    fn run_point(
        &self,
        point: &SweepPoint,
        warm: Option<&Path>,
    ) -> Result<Vec<(String, String)>, String>;
}

// ====================================================================
// Progress persistence
// ====================================================================

/// One finished point's outcome, as carried in memory and in the
/// progress file.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PointOutcome {
    Ok(Vec<(String, String)>),
    Err(String),
}

/// Serializes one progress line:
/// `digest \t index \t ok \t k=v \t k=v …` (or `… \t err \t message`).
fn progress_line(digest: u64, index: usize, outcome: &PointOutcome) -> String {
    let mut line = format!("{digest:016x}\t{index}");
    match outcome {
        PointOutcome::Ok(cells) => {
            line.push_str("\tok");
            for (k, v) in cells {
                line.push('\t');
                line.push_str(&format!("{k}={v}"));
            }
        }
        PointOutcome::Err(msg) => {
            line.push_str("\terr\t");
            // Keep the record one line; tabs are the field separator.
            line.push_str(&msg.replace('\n', "\\n").replace('\t', " "));
        }
    }
    line.push('\n');
    line
}

/// Parses a progress file, keeping only lines stamped with `digest`
/// (stale lines from an edited spec are ignored, as is any malformed
/// line — progress is a cache, not a source of truth).
fn parse_progress(text: &str, digest: u64) -> HashMap<usize, PointOutcome> {
    let mut done = HashMap::new();
    let want = format!("{digest:016x}");
    for line in text.lines() {
        let mut fields = line.split('\t');
        if fields.next() != Some(want.as_str()) {
            continue;
        }
        let Some(Ok(index)) = fields.next().map(str::parse::<usize>) else { continue };
        match fields.next() {
            Some("ok") => {
                let cells = fields
                    .filter_map(|f| f.split_once('='))
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect();
                done.insert(index, PointOutcome::Ok(cells));
            }
            Some("err") => {
                let msg = fields.next().unwrap_or("unknown error").to_string();
                done.insert(index, PointOutcome::Err(msg));
            }
            _ => {}
        }
    }
    done
}

// ====================================================================
// The merged results table
// ====================================================================

/// The sweep's single merged results table: one row per grid point in
/// grid order, axis columns first, then the union of every point's
/// result columns (and an `error` column when any point failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepTable {
    /// Column headers.
    pub columns: Vec<String>,
    /// One row per grid point, cells aligned with `columns` (empty
    /// string where a point produced no value for a column).
    pub rows: Vec<Vec<String>>,
}

impl SweepTable {
    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.columns);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as tab-separated values (one header line).
    pub fn to_tsv(&self) -> String {
        let mut out = self.columns.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

/// What a finished sweep reports alongside its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The merged results table, one row per grid point.
    pub table: SweepTable,
    /// Points executed by this invocation.
    pub ran: usize,
    /// Points taken from the progress file instead of re-run.
    pub resumed: usize,
    /// Points (from either source) that ended in an error row.
    pub failed: usize,
}

// ====================================================================
// The engine
// ====================================================================

/// Drives a [`SweepSpec`] through a [`SweepRunner`]: shared warm-up,
/// thread-pool fan-out, resumable progress, merged table. See the
/// module docs.
pub struct SweepEngine<'a, R: SweepRunner> {
    spec: &'a SweepSpec,
    runner: &'a R,
    jobs: Option<usize>,
    progress: Option<PathBuf>,
    warm_path: Option<PathBuf>,
}

impl<'a, R: SweepRunner> SweepEngine<'a, R> {
    /// Creates an engine over a parsed spec and a front-end runner.
    pub fn new(spec: &'a SweepSpec, runner: &'a R) -> Self {
        SweepEngine { spec, runner, jobs: None, progress: None, warm_path: None }
    }

    /// Overrides the worker-thread count (beats the spec's `jobs`
    /// directive; default 1 when neither is given).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Records finished points in (and resumes from) this file.
    pub fn progress_file(mut self, path: PathBuf) -> Self {
        self.progress = Some(path);
        self
    }

    /// Where the shared warm checkpoint lives. Required when the spec
    /// has a `warm` directive; an existing file there is reused
    /// (resume) instead of re-warmed.
    pub fn warm_checkpoint(mut self, path: PathBuf) -> Self {
        self.warm_path = Some(path);
        self
    }

    /// Runs the sweep to completion and merges the results.
    ///
    /// Individual point failures do **not** abort the run — they land
    /// in the table's `error` column and in
    /// [`SweepOutcome::failed`].
    ///
    /// # Errors
    ///
    /// [`SweepError::Invalid`] on a `warm` directive without a
    /// checkpoint path, [`SweepError::Warm`] when the shared warm-up
    /// run fails, [`SweepError::Io`] on progress-file failures.
    pub fn run(&self) -> Result<SweepOutcome, SweepError> {
        let points = self.spec.points();
        let digest = self.spec.digest();

        // Resume: load prior outcomes for this exact spec.
        let mut done: HashMap<usize, PointOutcome> = HashMap::new();
        if let Some(path) = &self.progress {
            match std::fs::read_to_string(path) {
                Ok(text) => done = parse_progress(&text, digest),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(error) => {
                    return Err(SweepError::Io { path: path.display().to_string(), error })
                }
            }
            done.retain(|idx, _| *idx < points.len());
        }
        let resumed = done.len();

        // Warm the shared checkpoint once (reusing a file left by an
        // interrupted invocation) before any point runs.
        let warm_path: Option<&Path> = match (self.spec.warm, &self.warm_path) {
            (None, _) => None,
            (Some(_), None) => {
                return Err(SweepError::Invalid(
                    "the spec has a `warm` directive but no checkpoint path was configured".into(),
                ));
            }
            (Some(at), Some(path)) => {
                if done.len() < points.len() && !path.exists() {
                    self.runner.warm(at, path).map_err(SweepError::Warm)?;
                }
                Some(path.as_path())
            }
        };

        // Fan the pending points over the worker pool. Each point is an
        // independent simulation, so a bare work-stealing index is all
        // the coordination the pool needs.
        let pending: Vec<&SweepPoint> =
            points.iter().filter(|p| !done.contains_key(&p.index)).collect();
        let fresh: Mutex<Vec<(usize, PointOutcome)>> = Mutex::new(Vec::new());
        let progress_sink: Option<Mutex<std::fs::File>> =
            match &self.progress {
                Some(path) => Some(Mutex::new(
                    std::fs::OpenOptions::new().create(true).append(true).open(path).map_err(
                        |error| SweepError::Io { path: path.display().to_string(), error },
                    )?,
                )),
                None => None,
            };
        let next = AtomicUsize::new(0);
        let workers = self.jobs.or(self.spec.jobs).unwrap_or(1).min(pending.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = pending.get(i) else { break };
                    let outcome = match self.runner.run_point(point, warm_path) {
                        Ok(cells) => PointOutcome::Ok(cells),
                        Err(msg) => PointOutcome::Err(msg),
                    };
                    if let Some(sink) = &progress_sink {
                        let line = progress_line(digest, point.index, &outcome);
                        let mut f = sink.lock().expect("progress sink poisoned");
                        // Best-effort: a failed progress write costs
                        // resumability, not results.
                        let _ = f.write_all(line.as_bytes());
                        let _ = f.flush();
                    }
                    fresh.lock().expect("results poisoned").push((point.index, outcome));
                });
            }
        });
        let ran = {
            let fresh = fresh.into_inner().expect("results poisoned");
            let n = fresh.len();
            done.extend(fresh);
            n
        };

        // Merge into one table in grid order.
        let mut columns: Vec<String> = vec!["point".to_string()];
        columns.extend(self.spec.axes.iter().map(|a| a.key.clone()));
        let mut result_cols: Vec<String> = Vec::new();
        let mut failed = 0;
        for p in &points {
            match done.get(&p.index) {
                Some(PointOutcome::Ok(cells)) => {
                    for (k, _) in cells {
                        if !result_cols.iter().any(|c| c == k) {
                            result_cols.push(k.clone());
                        }
                    }
                }
                Some(PointOutcome::Err(_)) => failed += 1,
                None => failed += 1,
            }
        }
        columns.extend(result_cols.iter().cloned());
        if failed > 0 {
            columns.push("error".to_string());
        }
        let rows = points
            .iter()
            .map(|p| {
                let mut row = vec![p.index.to_string()];
                row.extend(p.cells.iter().map(|(_, v)| v.clone()));
                let (cells, error): (&[(String, String)], &str) = match done.get(&p.index) {
                    Some(PointOutcome::Ok(cells)) => (cells, ""),
                    Some(PointOutcome::Err(msg)) => (&[], msg),
                    None => (&[], "did not run"),
                };
                for col in &result_cols {
                    row.push(
                        cells
                            .iter()
                            .find(|(k, _)| k == col)
                            .map_or(String::new(), |(_, v)| v.clone()),
                    );
                }
                if failed > 0 {
                    row.push(error.to_string());
                }
                row
            })
            .collect();
        Ok(SweepOutcome { table: SweepTable { columns, rows }, ran, resumed, failed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    const SPEC: &str = "\
        # grid over two axes\n\
        scenario memcached\n\
        warm 2ms\n\
        jobs 2\n\
        set --racks 2\n\
        set --cross-rack\n\
        axis --proto = udp, tcp\n\
        axis --requests = 10, 20, 30\n";

    fn spec() -> SweepSpec {
        SweepSpec::parse(SPEC).expect("spec must parse")
    }

    /// A scratch directory unique to one test invocation.
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "diablo_sweep_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn parse_builds_the_grid_and_display_round_trips() {
        let s = spec();
        assert_eq!(s.scenario, "memcached");
        assert_eq!(s.warm, Some(SimDuration::from_millis(2)));
        assert_eq!(s.jobs, Some(2));
        assert_eq!(
            s.fixed,
            vec![("--racks".into(), Some("2".into())), ("--cross-rack".into(), None)]
        );
        let pts = s.points();
        assert_eq!(pts.len(), 6);
        // First axis outermost: proto varies slowest.
        assert_eq!(
            pts[0].cells,
            vec![("--proto".into(), "udp".into()), ("--requests".into(), "10".into())]
        );
        assert_eq!(pts[2].cells[1].1, "30");
        assert_eq!(pts[3].cells[0].1, "tcp");
        assert_eq!(
            s.point_args(&pts[3]),
            ["--racks", "2", "--cross-rack", "--proto", "tcp", "--requests", "10"]
        );
        assert_eq!(s.warm_args(), ["--racks", "2", "--cross-rack"]);
        // Canonical display reparses equal.
        let reparsed = SweepSpec::parse(&s.to_string()).expect("canonical text must parse");
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.digest(), s.digest());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        let cases: &[(&str, &str)] = &[
            ("axis --a = 1, 2\n", "missing `scenario`"),
            ("scenario x\n", "at least one `axis`"),
            ("scenario x\nscenario y\naxis --a = 1\n", "duplicate `scenario`"),
            ("scenario x\naxis --a = 1\naxis --a = 2\n", "duplicate axis"),
            ("scenario x\naxis --a =\n", "no values"),
            ("scenario x\naxis --a 1, 2\n", "expected `axis"),
            ("scenario x\nwarm 5\naxis --a = 1\n", "suffix"),
            ("scenario x\njobs 0\naxis --a = 1\n", "at least 1"),
            ("scenario x\nfrobnicate y\naxis --a = 1\n", "unknown directive"),
            ("scenario x\nset\naxis --a = 1\n", "expected `set"),
            ("scenario x\nset --a 1 2\naxis --a = 1\n", "at most one value"),
        ];
        for (text, needle) in cases {
            let err = SweepSpec::parse(text).expect_err(text).to_string();
            assert!(err.contains(needle), "`{text}` => `{err}` (wanted `{needle}`)");
        }
    }

    /// Counts runner invocations and echoes the point back as results.
    struct EchoRunner {
        warms: AtomicUsize,
        runs: AtomicUsize,
        fail_index: Option<usize>,
    }

    impl EchoRunner {
        fn new(fail_index: Option<usize>) -> Self {
            EchoRunner { warms: AtomicUsize::new(0), runs: AtomicUsize::new(0), fail_index }
        }
    }

    impl SweepRunner for EchoRunner {
        fn warm(&self, _at: SimDuration, path: &Path) -> Result<(), String> {
            self.warms.fetch_add(1, Ordering::Relaxed);
            std::fs::write(path, b"warm").map_err(|e| e.to_string())
        }

        fn run_point(
            &self,
            point: &SweepPoint,
            warm: Option<&Path>,
        ) -> Result<Vec<(String, String)>, String> {
            self.runs.fetch_add(1, Ordering::Relaxed);
            assert!(warm.is_some_and(|p| p.exists()), "points must see the warm checkpoint");
            if self.fail_index == Some(point.index) {
                return Err(format!("point {} exploded", point.index));
            }
            Ok(vec![
                (
                    "echo".to_string(),
                    point.cells.iter().map(|(_, v)| v.as_str()).collect::<Vec<_>>().join("/"),
                ),
                ("idx".to_string(), point.index.to_string()),
            ])
        }
    }

    #[test]
    fn engine_runs_every_point_and_merges_in_grid_order() {
        let dir = scratch("merge");
        let s = spec();
        let runner = EchoRunner::new(None);
        let out = SweepEngine::new(&s, &runner)
            .warm_checkpoint(dir.join("warm.snap"))
            .run()
            .expect("sweep must run");
        assert_eq!(runner.warms.load(Ordering::Relaxed), 1, "warm runs exactly once");
        assert_eq!(out.ran, 6);
        assert_eq!(out.resumed, 0);
        assert_eq!(out.failed, 0);
        assert_eq!(out.table.columns, ["point", "--proto", "--requests", "echo", "idx"]);
        assert_eq!(out.table.rows.len(), 6);
        // Grid order regardless of which worker finished first.
        assert_eq!(out.table.rows[0], ["0", "udp", "10", "udp/10", "0"]);
        assert_eq!(out.table.rows[5], ["5", "tcp", "30", "tcp/30", "5"]);
        let rendered = out.table.render();
        assert!(rendered.lines().count() == 8, "header + rule + 6 rows:\n{rendered}");
        assert!(rendered.contains("--proto"), "{rendered}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_failing_point_lands_in_the_error_column_and_the_sweep_continues() {
        let dir = scratch("fail");
        let s = spec();
        let runner = EchoRunner::new(Some(4));
        let out = SweepEngine::new(&s, &runner)
            .warm_checkpoint(dir.join("warm.snap"))
            .run()
            .expect("point failures must not abort the sweep");
        assert_eq!(out.ran, 6);
        assert_eq!(out.failed, 1);
        assert_eq!(out.table.columns.last().map(String::as_str), Some("error"));
        let bad = &out.table.rows[4];
        assert_eq!(bad.last().unwrap(), "point 4 exploded");
        assert!(bad[3].is_empty(), "failed point has no result cells: {bad:?}");
        assert!(out.table.rows[0].last().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_file_resumes_without_rerunning_and_ignores_stale_digests() {
        let dir = scratch("resume");
        let s = spec();
        let progress = dir.join("sweep.progress");
        // Poison the file with a stale-digest line for point 0: it must
        // be ignored, not resumed.
        std::fs::write(&progress, "0000000000000000\t0\tok\techo=stale\n").unwrap();
        let first = EchoRunner::new(None);
        let out1 = SweepEngine::new(&s, &first)
            .warm_checkpoint(dir.join("warm.snap"))
            .progress_file(progress.clone())
            .run()
            .expect("first pass");
        assert_eq!(out1.ran, 6, "stale digest must not count as progress");
        assert_eq!(out1.table.rows[0][3], "udp/10", "stale cell must not leak into results");

        // Second pass: everything resumes, the runner never fires.
        let second = EchoRunner::new(None);
        let out2 = SweepEngine::new(&s, &second)
            .warm_checkpoint(dir.join("warm.snap"))
            .progress_file(progress.clone())
            .run()
            .expect("second pass");
        assert_eq!(second.runs.load(Ordering::Relaxed), 0, "resume must skip finished points");
        assert_eq!(second.warms.load(Ordering::Relaxed), 0, "fully-resumed sweep skips warm-up");
        assert_eq!(out2.resumed, 6);
        assert_eq!(out2.ran, 0);
        assert_eq!(out2.table, out1.table, "resumed table must equal the original");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_directive_without_a_checkpoint_path_is_refused() {
        let s = spec();
        let runner = EchoRunner::new(None);
        let err = SweepEngine::new(&s, &runner).run().expect_err("must refuse");
        assert!(matches!(err, SweepError::Invalid(_)), "{err}");
    }

    #[test]
    fn specs_without_warm_run_points_cold() {
        struct ColdRunner;
        impl SweepRunner for ColdRunner {
            fn warm(&self, _at: SimDuration, _path: &Path) -> Result<(), String> {
                panic!("no warm directive, warm must not be called");
            }
            fn run_point(
                &self,
                point: &SweepPoint,
                warm: Option<&Path>,
            ) -> Result<Vec<(String, String)>, String> {
                assert!(warm.is_none(), "cold sweep must not pass a checkpoint");
                Ok(vec![("n".to_string(), point.index.to_string())])
            }
        }
        let s = SweepSpec::parse("scenario x\naxis --a = 1, 2\n").unwrap();
        let out = SweepEngine::new(&s, &ColdRunner).run().expect("cold sweep");
        assert_eq!(out.ran, 2);
        assert_eq!(out.failed, 0);
    }
}
