//! Versioned whole-simulation snapshot files: checkpoint a running
//! experiment to disk and restore it bit-identically.
//!
//! A snapshot captures everything that evolves deterministically — the
//! executor clock and event queue, every component's persisted state
//! (switch queues, NIC rings, kernels, sockets, TCP connections, guest
//! processes, RNG streams), and the harness's own drive position
//! (horizon, sampling cursor, recorded series). It deliberately does
//! **not** capture configuration: topology, link parameters at build
//! time, workload knobs, and the fault plan are rebuilt from the
//! scenario spec on restore, which is what lets a parameter sweep seed
//! many differently-tuned runs from one shared warmed checkpoint (the
//! restored state overwrites only state; rebuilt config wins). See
//! DESIGN.md §15 for the full what-is/what-isn't-serialized table.
//!
//! # File format
//!
//! ```text
//! magic       8 bytes  b"DIABSNAP"
//! version     u32      SNAP_VERSION; mismatch => SnapError::Version
//! fingerprint u64      structural hash; mismatch => SnapError::Fingerprint
//! drive       DriveState (harness horizon, sample cursor, series)
//! executor    SimHost::save_state (common serial/parallel format)
//! ```
//!
//! The fingerprint covers *structure only* — topology shape, fabric
//! kind, workload name — never sweepable knobs, so a checkpoint warmed
//! under one service time restores under another, but restoring a
//! 2-rack snapshot into a 4-rack cluster fails loudly instead of
//! corrupting memory-by-another-name.

use crate::cluster::SimHost;
use diablo_engine::prelude::SeriesRecorder;
use diablo_engine::snap::{Snap, SnapError, SnapReader, SnapWriter};
use diablo_engine::time::SimTime;
use std::path::Path;

/// Leading magic of every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"DIABSNAP";

/// Format version this build writes and reads. Bump on any layout
/// change; restore rejects other versions with [`SnapError::Version`].
pub const SNAP_VERSION: u32 = 1;

/// FNV-1a over the structural description strings, the cheap stable
/// hash used for the header fingerprint. Not cryptographic — it guards
/// against honest shape mismatches, not adversaries.
pub fn fingerprint<S: AsRef<str>>(parts: impl IntoIterator<Item = S>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_ref().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator step so ["ab","c"] and ["a","bc"] differ.
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The experiment harness's resumable drive position, snapshotted
/// alongside the executor so a restored run continues the same horizon
/// doubling schedule and sampling cadence (and keeps the series rows
/// already recorded).
#[derive(Debug, Clone, PartialEq)]
pub struct DriveState {
    /// Current drive horizon (the harness doubles it per pending poll).
    pub horizon: SimTime,
    /// Next periodic-scrape instant.
    pub next_sample: SimTime,
    /// Series rows recorded so far (`None` without a sampling cadence).
    pub series: Option<SeriesRecorder>,
}

diablo_engine::impl_snap_struct!(DriveState { horizon, next_sample, series });

/// Serializes `host` plus the harness drive position into a complete
/// snapshot byte stream (header included).
pub fn encode_snapshot(host: &mut SimHost, fingerprint: u64, drive: &DriveState) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_bytes(&SNAP_MAGIC);
    SNAP_VERSION.save(&mut w);
    fingerprint.save(&mut w);
    drive.save(&mut w);
    host.save_state(&mut w);
    w.into_bytes()
}

/// Restores a snapshot byte stream into a freshly built,
/// software-loaded `host`, validating magic, version, and structural
/// fingerprint before touching any state.
///
/// # Errors
///
/// [`SnapError::Malformed`] on bad magic or trailing bytes,
/// [`SnapError::Version`] / [`SnapError::Fingerprint`] on header
/// mismatches, and any decode error from the executor payload.
pub fn decode_snapshot(
    bytes: &[u8],
    host: &mut SimHost,
    expected_fingerprint: u64,
) -> Result<DriveState, SnapError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take_bytes(SNAP_MAGIC.len())?;
    if magic != SNAP_MAGIC {
        return Err(SnapError::Malformed(format!(
            "not a snapshot file: expected magic {:?}, found {:?}",
            SNAP_MAGIC, magic
        )));
    }
    let version: u32 = Snap::load(&mut r)?;
    if version != SNAP_VERSION {
        return Err(SnapError::Version { found: version, expected: SNAP_VERSION });
    }
    let found: u64 = Snap::load(&mut r)?;
    if found != expected_fingerprint {
        return Err(SnapError::Fingerprint { found, expected: expected_fingerprint });
    }
    let drive: DriveState = Snap::load(&mut r)?;
    host.load_state(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapError::Malformed(format!(
            "{} trailing bytes after the executor state",
            r.remaining()
        )));
    }
    Ok(drive)
}

/// A snapshot operation failure for CLI-facing reporting: either the
/// file could not be read/written, or its contents did not validate.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error on the snapshot path.
    Io {
        /// The snapshot path.
        path: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The snapshot stream failed to decode or validate.
    Decode {
        /// The snapshot path.
        path: String,
        /// The underlying decode error.
        error: SnapError,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, error } => write!(f, "snapshot `{path}`: {error}"),
            SnapshotError::Decode { path, error } => write!(f, "snapshot `{path}`: {error}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Writes a complete snapshot of `host` (plus drive position) to `path`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be written.
pub fn write_snapshot_file(
    path: &Path,
    host: &mut SimHost,
    fingerprint: u64,
    drive: &DriveState,
) -> Result<(), SnapshotError> {
    let bytes = encode_snapshot(host, fingerprint, drive);
    std::fs::write(path, bytes)
        .map_err(|error| SnapshotError::Io { path: path.display().to_string(), error })
}

/// Reads and restores a snapshot file into `host`.
///
/// # Errors
///
/// [`SnapshotError::Io`] when the file cannot be read,
/// [`SnapshotError::Decode`] when its contents fail validation.
pub fn read_snapshot_file(
    path: &Path,
    host: &mut SimHost,
    expected_fingerprint: u64,
) -> Result<DriveState, SnapshotError> {
    let bytes = std::fs::read(path)
        .map_err(|error| SnapshotError::Io { path: path.display().to_string(), error })?;
    decode_snapshot(&bytes, host, expected_fingerprint)
        .map_err(|error| SnapshotError::Decode { path: path.display().to_string(), error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec, RunMode};
    use diablo_net::topology::TopologyConfig;

    fn tiny_host() -> SimHost {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 1, servers_per_rack: 2, racks_per_array: 1 });
        Cluster::instantiate(&spec, RunMode::Serial).0
    }

    #[test]
    fn fingerprint_separates_parts_and_is_stable() {
        assert_eq!(fingerprint(["a", "b"]), fingerprint(["a", "b"]));
        assert_ne!(fingerprint(["ab", "c"]), fingerprint(["a", "bc"]));
        assert_ne!(fingerprint(["a"]), fingerprint(["a", ""]));
    }

    #[test]
    fn header_validation_rejects_magic_version_and_fingerprint() {
        let drive = DriveState {
            horizon: SimTime::from_millis(5),
            next_sample: SimTime::ZERO,
            series: None,
        };
        let mut host = tiny_host();
        let good = encode_snapshot(&mut host, 7, &drive);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        let mut h = tiny_host();
        assert!(matches!(decode_snapshot(&bad, &mut h, 7), Err(SnapError::Malformed(_))));

        // Bad version (little-endian u32 follows the 8-byte magic).
        let mut bad = good.clone();
        bad[8] = 0xee;
        let mut h = tiny_host();
        assert!(matches!(decode_snapshot(&bad, &mut h, 7), Err(SnapError::Version { .. })));

        // Bad fingerprint.
        let mut h = tiny_host();
        assert!(matches!(
            decode_snapshot(&good, &mut h, 8),
            Err(SnapError::Fingerprint { found: 7, expected: 8 })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        let mut h = tiny_host();
        assert!(matches!(decode_snapshot(&bad, &mut h, 7), Err(SnapError::Malformed(_))));

        // The pristine stream restores.
        let mut h = tiny_host();
        assert_eq!(decode_snapshot(&good, &mut h, 7).expect("round trip"), drive);
    }
}
