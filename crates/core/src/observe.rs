//! Cluster-wide observability: whole-simulation metric scraping, merged
//! flight recording, and frame-conservation (drop accounting) audits.
//!
//! Every instrumentable component — switches, NICs, the modeled kernel,
//! guest applications — exposes its counters through
//! [`Instrumented`](diablo_engine::metrics::Instrumented). This module
//! names each component hierarchically (`rack0.server3.nic.tx_frames`,
//! `rack0.tor.drops_buffer`) and scrapes the whole cluster into one
//! [`MetricsRegistry`], identically under either executor: registries from
//! a serial run and a partition-parallel run of the same model serialize
//! byte-for-byte equal.
//!
//! The drop-accounting audit closes the loop the one-sided loss bug left
//! open: every frame a NIC puts on a wire must show up as a switch
//! receive, and every frame a switch delivers toward a node must show up
//! at a NIC as either an accepted frame or a ring drop. Loss draws are
//! counted explicitly on both directions, so a device silently forgetting
//! frames breaks the balance instead of hiding.

use crate::cluster::{Cluster, SimHost};
use diablo_engine::event::ComponentId;
use diablo_engine::metrics::{FlightEvent, FlightRecorder, MetricsRegistry};
use diablo_net::switch::PacketSwitch;
use diablo_net::topology::{Endpoint, SwitchLevel};
use diablo_net::NodeAddr;
use diablo_node::ServerNode;
use std::collections::HashMap;

/// Cluster-wide frame conservation totals, split by wire direction, plus
/// any invariant violations found. Produced by
/// [`Cluster::drop_accounting`]; only meaningful once the simulation has
/// quiesced (no frame in flight on any wire).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropAccounting {
    /// Frames NICs delivered onto node→ToR wires.
    pub node_tx_frames: u64,
    /// Frames lost to the egress loss draw at NICs.
    pub node_tx_loss: u64,
    /// Frames NICs discarded before the wire because the link had no
    /// carrier (fault injection); never serialized, so outside the wire
    /// books.
    pub node_tx_carrier_drops: u64,
    /// Frames switches received on node-facing ports.
    pub switch_rx_from_nodes: u64,
    /// Frames switches delivered onto switch→node wires.
    pub switch_tx_to_nodes: u64,
    /// Frames NICs accepted from the wire into the RX ring.
    pub node_rx_frames: u64,
    /// Frames NICs dropped because the RX ring was full.
    pub node_rx_ring_drops: u64,
    /// Frames that arrived at a NIC whose link had lost carrier (the
    /// switch committed them to the wire before the fault hit).
    pub node_rx_carrier_drops: u64,
    /// Frames switches dropped to injected faults (buffer flushes on
    /// port/switch down, arrivals at a powered-off switch, frames routed
    /// onto carrier-less links).
    pub switch_fault_drops: u64,
    /// Frames switches delivered onto inter-switch wires.
    pub inter_switch_tx: u64,
    /// Frames switches received on inter-switch ports.
    pub inter_switch_rx: u64,
    /// Frames still buffered inside switches.
    pub frames_in_transit: u64,
    /// Human-readable descriptions of every violated invariant (empty
    /// when the books balance).
    pub violations: Vec<String>,
}

impl DropAccounting {
    /// `true` when every conservation invariant holds.
    pub fn is_balanced(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Cluster {
    /// Hierarchical scrape name of every component: nodes are
    /// `rack{r}.server{slot}`, ToRs `rack{r}.tor`, array switches
    /// `array{a}`, the root `datacenter`. On a fat-tree, edges take the
    /// ToR names and the upper tiers are `agg{i}` / `core{i}`.
    fn component_names(&self) -> HashMap<ComponentId, String> {
        let mut names = HashMap::new();
        let spr = self.topo.config().servers_per_rack;
        for (n, &id) in self.nodes.iter().enumerate() {
            let rack = self.topo.rack_of(NodeAddr(n as u32));
            let slot = n - rack * spr;
            names.insert(id, format!("rack{rack}.server{slot}"));
        }
        for (s, &id) in self.switches.iter().enumerate() {
            let name = match self.topo.switch_level(s) {
                SwitchLevel::Tor { rack } => format!("rack{rack}.tor"),
                SwitchLevel::Array { array } => format!("array{array}"),
                SwitchLevel::Datacenter => "datacenter".to_string(),
                SwitchLevel::Aggregation { index, .. } => format!("agg{index}"),
                SwitchLevel::Core { index } => format!("core{index}"),
            };
            names.insert(id, name);
        }
        names
    }

    /// Scrapes every component's performance counters into one registry
    /// under hierarchical names (`rack0.server3.nic.tx_frames`,
    /// `rack0.tor.drops_buffer`, `rack0.server1.proc0.latency_ns`).
    ///
    /// The registry depends only on model state, never on execution
    /// structure, so a serial run and a partition-parallel run of the
    /// same cluster scrape byte-identically.
    pub fn scrape(&self, host: &SimHost) -> MetricsRegistry {
        let names = self.component_names();
        let mut reg = MetricsRegistry::new();
        host.visit_instrumented(|id, ins| {
            if let Some(name) = names.get(&id) {
                reg.record(name, ins);
            }
        });
        reg
    }

    /// Turns on bounded flight recording (kernel trace, NIC DMA events,
    /// switch enqueues and drops) in every component, each keeping its
    /// most recent `capacity` records.
    pub fn enable_flight_recorders(&self, host: &mut SimHost, capacity: usize) {
        for &id in &self.nodes {
            host.component_mut::<ServerNode>(id)
                .expect("node vanished")
                .kernel_mut()
                .enable_trace(capacity);
        }
        for &id in &self.switches {
            host.component_mut::<PacketSwitch>(id).expect("switch vanished").enable_trace(capacity);
        }
    }

    /// Merges every component's flight records into one time-ordered
    /// stream of at most `cap` events, each tagged with the component's
    /// hierarchical name. Empty unless
    /// [`enable_flight_recorders`](Cluster::enable_flight_recorders) was
    /// called before the run.
    pub fn flight_recording(&self, host: &SimHost, cap: usize) -> Vec<FlightEvent> {
        let names = self.component_names();
        let mut rec = FlightRecorder::new();
        host.visit_instrumented(|id, ins| {
            if let Some(name) = names.get(&id) {
                rec.add_source(name, ins.flight_records());
            }
        });
        rec.finish(cap)
    }

    /// Audits frame conservation across the cluster.
    ///
    /// Checks, per direction:
    ///
    /// * node→switch: frames NICs delivered equal frames switches
    ///   received on node-facing ports (egress loss draws are excluded
    ///   from delivery counts on both device types);
    /// * switch→node: frames switches delivered toward nodes equal
    ///   frames NICs accepted plus frames NICs ring-dropped plus frames
    ///   dropped at carrier-less NICs (fault injection);
    /// * switch→switch: inter-switch deliveries equal inter-switch
    ///   receives;
    /// * per switch: receives equal deliveries plus loss/buffer/route/
    ///   fault drops plus frames still buffered.
    ///
    /// Only meaningful at quiescence — a frame serialized onto a wire but
    /// not yet received is counted on neither side.
    pub fn drop_accounting(&self, host: &SimHost) -> DropAccounting {
        let mut acct = DropAccounting::default();
        for &id in &self.nodes {
            let nic = host.component::<ServerNode>(id).expect("node vanished").kernel().nic_stats();
            acct.node_tx_frames += nic.tx_frames.get();
            acct.node_tx_loss += nic.tx_loss_drops.get();
            acct.node_tx_carrier_drops += nic.tx_carrier_drops.get();
            acct.node_rx_frames += nic.rx_frames.get();
            acct.node_rx_ring_drops += nic.rx_ring_drops.get();
            acct.node_rx_carrier_drops += nic.rx_carrier_drops.get();
        }
        for (s, &id) in self.switches.iter().enumerate() {
            let sw = host.component::<PacketSwitch>(id).expect("switch vanished");
            let stats = sw.stats();
            let in_transit = sw.frames_in_transit();
            acct.frames_in_transit += in_transit;
            let rx = stats.rx_frames.get();
            let tx = stats.tx_frames.get();
            acct.switch_fault_drops += stats.drops_fault.get();
            let drops = stats.drops_buffer.get()
                + stats.drops_error.get()
                + stats.drops_route.get()
                + stats.drops_fault.get();
            if rx != tx + drops + in_transit {
                acct.violations.push(format!(
                    "switch {s}: rx {rx} != tx {tx} + drops {drops} + in-transit {in_transit}"
                ));
            }
            for port in 0..self.topo.switch_ports(s) {
                let prx = stats.rx_per_port.get(port as usize).copied().unwrap_or(0);
                let ptx = stats.tx_per_port.get(port as usize).copied().unwrap_or(0);
                match self.topo.peer_of(s, port) {
                    Endpoint::Node(_) => {
                        acct.switch_rx_from_nodes += prx;
                        acct.switch_tx_to_nodes += ptx;
                    }
                    Endpoint::Switch { .. } => {
                        acct.inter_switch_rx += prx;
                        acct.inter_switch_tx += ptx;
                    }
                    Endpoint::Unwired => {}
                }
            }
        }
        if acct.node_tx_frames != acct.switch_rx_from_nodes {
            acct.violations.push(format!(
                "node→switch: NICs delivered {} frames but switches received {}",
                acct.node_tx_frames, acct.switch_rx_from_nodes
            ));
        }
        let node_rx_accounted =
            acct.node_rx_frames + acct.node_rx_ring_drops + acct.node_rx_carrier_drops;
        if acct.switch_tx_to_nodes != node_rx_accounted {
            acct.violations.push(format!(
                "switch→node: switches delivered {} frames but NICs accounted {} (accepted {} + \
                 ring drops {} + carrier drops {})",
                acct.switch_tx_to_nodes,
                node_rx_accounted,
                acct.node_rx_frames,
                acct.node_rx_ring_drops,
                acct.node_rx_carrier_drops
            ));
        }
        if acct.inter_switch_tx != acct.inter_switch_rx {
            acct.violations.push(format!(
                "switch→switch: {} delivered but {} received",
                acct.inter_switch_tx, acct.inter_switch_rx
            ));
        }
        acct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, RunMode};
    use diablo_net::topology::TopologyConfig;

    fn small_cluster() -> (SimHost, Cluster) {
        let spec =
            ClusterSpec::gbe(TopologyConfig { racks: 2, servers_per_rack: 2, racks_per_array: 2 });
        Cluster::instantiate(&spec, RunMode::Serial)
    }

    #[test]
    fn scrape_names_every_component() {
        let (host, cluster) = small_cluster();
        let reg = cluster.scrape(&host);
        assert!(reg.counter("rack0.server0.nic.tx_frames").is_some());
        assert!(reg.counter("rack1.server1.kernel.syscalls").is_some());
        assert!(reg.counter("rack0.tor.rx_frames").is_some());
        assert!(reg.counter("array0.rx_frames").is_some());
    }

    #[test]
    fn idle_cluster_books_balance() {
        let (host, cluster) = small_cluster();
        let acct = cluster.drop_accounting(&host);
        assert!(acct.is_balanced(), "{:?}", acct.violations);
        assert_eq!(acct.node_tx_frames, 0);
    }
}
