//! Experiment definitions: assembled scenarios matching the paper's case
//! studies (§4), returning the measurements the figures plot.
//!
//! Every experiment here is a [`Workload`] implementation driven by the
//! generic [`ExperimentHarness`](crate::experiment::ExperimentHarness) —
//! the drive loop, sampling, settle, conservation audit and failure merge
//! live exactly once in [`crate::experiment`]; this module only describes
//! *what* runs (which guest processes, where) and *what to measure*.

use crate::cluster::{Cluster, FabricKind, RunMode, SimHost, SwitchTemplate};
use crate::experiment::{
    CheckpointPolicy, ExperimentBase, ExperimentError, ExperimentHarness, Workload,
};
use crate::fault::FaultPlan;
use crate::observe::DropAccounting;
use diablo_apps::arrival::{ArrivalSpec, SloStats};
use diablo_apps::control::{
    gate_futex_key, service_gate, ControlAgent, ControlConfig, ControlPlane, ControlReport,
    DiscoveryConfig, ServiceSpec, AGENT_PORT, CONTROL_PORT,
};
use diablo_apps::failure::FailureStats;
use diablo_apps::incast::{
    shared, IncastEpollClient, IncastMaster, IncastServer, IncastWorker, INCAST_PORT,
};
use diablo_apps::memcached::{
    mc_shared, McClient, McClientConfig, McDispatcher, McOpenLoopClient, McServerConfig,
    McSharedHandle, McVersion, McWorker, MEMCACHED_PORT,
};
use diablo_apps::partition_aggregate::{
    PaFrontend, PaFrontendConfig, PaLeaf, PaLeafConfig, PA_PORT,
};
use diablo_engine::prelude::{
    DetRng, ExecReport, Frequency, Histogram, MetricsRegistry, SeriesRecorder, SimDuration, SimTime,
};
use diablo_net::switch::BufferConfig;
use diablo_net::topology::{FatTreeConfig, HopClass, TopologyConfig};
use diablo_net::{NodeAddr, SockAddr};
use diablo_stack::process::{Proto, Tid};
use diablo_stack::profile::{CongestionControl, KernelProfile};
use std::collections::BTreeMap;
use std::sync::Arc;

// ====================================================================
// Incast (§4.1, Figure 6)
// ====================================================================

/// Which client implementation drives the incast benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncastClientKind {
    /// One blocking-socket thread per server plus a coordinator.
    Pthread,
    /// Single-threaded nonblocking epoll loop.
    Epoll,
}

/// One incast experiment configuration.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Fan-in: number of storage servers.
    pub servers: usize,
    /// Synchronized-read iterations (40 in the paper).
    pub iterations: u64,
    /// Total block bytes striped per iteration (256 KB in the paper).
    pub block_bytes: u32,
    /// Client structure.
    pub client: IncastClientKind,
    /// Server CPU clock (2 or 4 GHz in Figure 6(b)).
    pub cpu: Frequency,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// Use the 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// Override the ToR buffer (defaults to the paper's 4 KB/port).
    pub switch: Option<SwitchTemplate>,
    /// Racks to spread the servers over (1 in the paper's figures; >1
    /// exercises the partitioned executor on a multi-rack cut). Ignored
    /// on a fat-tree fabric, whose shape comes from its own config.
    pub racks: usize,
    /// Physical fabric (baseline tree, or a 3-tier fat-tree with ECMP;
    /// see [`IncastConfig::on_fat_tree`]).
    pub fabric: FabricKind,
    /// Congestion control the guest kernels run; DCTCP also enables
    /// switch ECN marking.
    pub cc: CongestionControl,
    /// ECN marking threshold override in queued bytes per egress port
    /// (`None` keeps the DCTCP default, no marking under Reno).
    pub ecn_threshold: Option<u32>,
    /// Execution mode.
    pub mode: RunMode,
    /// Seed.
    pub seed: u64,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the result's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
    /// Per-request deadline for the epoll client (reconnect + retry on
    /// expiry). Ignored by the pthread client, which relies on the TCP
    /// retransmission timeout surfacing `ETIMEDOUT`.
    pub request_deadline: Option<SimDuration>,
    /// Open-loop arrival schedule: iterations start at the profile's
    /// instants instead of back to back, and `iterations` is ignored.
    /// Requires the epoll client.
    pub arrival: Option<ArrivalSpec>,
    /// Per-iteration SLO target (open-loop accounting).
    pub slo: Option<SimDuration>,
    /// When set, a monitoring-only [`ControlPlane`] joins the topology
    /// on one extra node: every storage server runs a health-beacon
    /// [`ControlAgent`] and the scheduler tracks their liveness, without
    /// steering the incast client. Exercises the control protocol under
    /// the congestion the incast burst creates.
    pub control: Option<ControlConfig>,
}

impl IncastConfig {
    /// The paper's Figure 6(a) point: 1 Gbps shallow-buffer switch,
    /// 4 GHz CPU, pthread client.
    pub fn fig6a(servers: usize) -> Self {
        IncastConfig {
            servers,
            iterations: 10,
            block_bytes: 256 * 1024,
            client: IncastClientKind::Pthread,
            cpu: Frequency::ghz(4),
            kernel: KernelProfile::linux_2_6_39(),
            ten_gig: false,
            switch: None,
            racks: 1,
            fabric: FabricKind::Tree,
            cc: CongestionControl::Reno,
            ecn_threshold: None,
            mode: RunMode::Serial,
            seed: 0x0001_ca57,
            sample_every: None,
            faults: None,
            request_deadline: None,
            arrival: None,
            slo: None,
            control: None,
        }
    }

    /// A Figure 6(b) point: 10 Gbps fabric with the given CPU and client.
    pub fn fig6b(servers: usize, ghz: u64, client: IncastClientKind) -> Self {
        IncastConfig { cpu: Frequency::ghz(ghz), ten_gig: true, client, ..Self::fig6a(servers) }
    }

    /// Re-targets the scenario onto a 3-tier fat-tree fabric: the client
    /// stays on node 0, the servers spread across the tree's hosts, and
    /// every switch routes with flow-consistent ECMP.
    #[must_use]
    pub fn on_fat_tree(mut self, ft: FatTreeConfig) -> Self {
        self.fabric = FabricKind::FatTree(ft);
        self
    }

    /// The shared experiment base this config describes.
    fn base(&self) -> ExperimentBase {
        // A monitoring control plane adds one node for the scheduler.
        let extra = usize::from(self.control.is_some());
        let topology = match self.fabric {
            FabricKind::FatTree(ft) => {
                let view = ft.view();
                assert!(
                    view.racks * view.servers_per_rack > self.servers + extra,
                    "fat-tree k={} with {} hosts/edge has no room for {} servers + 1 client",
                    ft.k,
                    ft.hosts_per_edge,
                    self.servers
                );
                view
            }
            FabricKind::Tree => {
                let racks = self.racks.max(1);
                TopologyConfig {
                    racks,
                    servers_per_rack: (self.servers + 1 + extra).div_ceil(racks),
                    racks_per_array: racks,
                }
            }
        };
        // A fat-tree is one commodity switch model replicated across
        // tiers, so the override applies to every level; the classic
        // tree keeps it as a ToR-only override.
        let (tor, switch_all) = match self.fabric {
            FabricKind::FatTree(_) => (None, self.switch),
            FabricKind::Tree => (self.switch, None),
        };
        ExperimentBase {
            topology,
            fabric: self.fabric,
            cc: self.cc,
            ecn_threshold: self.ecn_threshold,
            kernel: self.kernel.clone(),
            cpu: Some(self.cpu),
            ten_gig: self.ten_gig,
            tor,
            switch_all,
            extra_switch_latency: SimDuration::ZERO,
            seed: self.seed,
            mode: self.mode,
            sample_every: self.sample_every,
            faults: self.faults.clone(),
        }
    }
}

/// Incast measurements.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Application goodput in Mbps.
    pub goodput_mbps: f64,
    /// Per-iteration completion times.
    pub iteration_times: Vec<SimDuration>,
    /// Switch tail drops across the run.
    pub switch_drops: u64,
    /// Events processed (simulator-performance reporting).
    pub events: u64,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`IncastConfig::sample_every`] was set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report, merged over all client
    /// threads (all zeros in a fault-free run).
    pub failure: FailureStats,
    /// Arrivals the open-loop schedule offered (0 in closed-loop runs).
    pub offered: u64,
    /// Open-loop SLO report: iteration-time violations and shed
    /// admissions (empty in closed-loop runs).
    pub slo: SloStats,
    /// Monitoring control-plane counters (`None` unless
    /// [`IncastConfig::control`] was set).
    pub control: Option<ControlReport>,
}

/// The incast scenario behind the [`Workload`] trait: storage servers on
/// nodes 1..=n, the client (pthread master+workers, or one epoll loop) on
/// node 0.
struct IncastWorkload<'a> {
    cfg: &'a IncastConfig,
}

/// What [`IncastWorkload`] measures.
struct IncastSummary {
    goodput_bps: f64,
    iteration_times: Vec<SimDuration>,
    switch_drops: u64,
    offered: u64,
    control: Option<ControlReport>,
}

const INCAST_CLIENT: NodeAddr = NodeAddr(0);

impl IncastWorkload<'_> {
    /// The monitoring scheduler's node: one past the last server.
    fn cp_node(&self) -> Option<NodeAddr> {
        self.cfg.control.as_ref().map(|_| NodeAddr(self.cfg.servers as u32 + 1))
    }
}

impl Workload for IncastWorkload<'_> {
    type Summary = IncastSummary;

    fn name(&self) -> &str {
        "incast"
    }

    fn budget(&self) -> SimTime {
        if let Some(spec) = &self.cfg.arrival {
            // Open loop: the schedule's horizon bounds admissions; slack
            // covers the trailing iteration's RTO backoffs.
            return SimTime::ZERO + spec.horizon() + SimDuration::from_secs(10);
        }
        // Worst case: every iteration eats several RTO backoffs.
        SimTime::from_secs(10 + 3 * self.cfg.iterations)
    }

    fn build(&mut self, host: &mut SimHost, cluster: &Cluster) {
        let n = self.cfg.servers;
        let servers: Vec<SockAddr> =
            (1..=n).map(|i| SockAddr::new(NodeAddr(i as u32), INCAST_PORT)).collect();
        for s in &servers {
            cluster.spawn(host, s.node, Box::new(IncastServer::new()));
        }
        let fragment = self.cfg.block_bytes / n as u32;
        assert!(
            self.cfg.arrival.is_none() || self.cfg.client == IncastClientKind::Epoll,
            "incast open-loop mode requires the epoll client"
        );
        // Monitoring control plane: a health beacon on every server, the
        // scheduler on one extra node past the last server. It observes
        // liveness through the same congested fabric the incast burst
        // saturates but does not steer the client.
        if let Some(ctl) = &self.cfg.control {
            ctl.validate().expect("invalid ControlConfig");
            assert!(n <= 128, "service pool is limited to 128 replicas");
            let cp_node = self.cp_node().expect("control set");
            let mut agents = Vec::new();
            let mut racks = Vec::new();
            for (idx, s) in servers.iter().enumerate() {
                let stagger =
                    SimDuration::from_picos(ctl.heartbeat_every.as_picos() * idx as u64 / n as u64);
                cluster.spawn(
                    host,
                    s.node,
                    Box::new(ControlAgent::new(
                        SockAddr::new(cp_node, CONTROL_PORT),
                        ctl.heartbeat_every,
                        stagger,
                        BTreeMap::new(),
                    )),
                );
                agents.push(SockAddr::new(s.node, AGENT_PORT));
                racks.push(cluster.topo.rack_of(s.node) as u32);
            }
            let spec = ServiceSpec {
                id: 0,
                pool: servers.clone(),
                agents,
                racks,
                initial: (0..n).collect(),
            };
            cluster.spawn(
                host,
                cp_node,
                Box::new(ControlPlane::new(ctl.clone(), vec![spec], CONTROL_PORT)),
            );
        }
        match self.cfg.client {
            IncastClientKind::Pthread => {
                let sh = shared(n);
                cluster.spawn(
                    host,
                    INCAST_CLIENT,
                    Box::new(IncastMaster::new(n, self.cfg.iterations, sh.clone())),
                );
                for s in &servers {
                    cluster.spawn(
                        host,
                        INCAST_CLIENT,
                        Box::new(IncastWorker::new(*s, fragment, sh.clone())),
                    );
                }
            }
            IncastClientKind::Epoll => {
                let mut client = IncastEpollClient::new(servers, fragment, self.cfg.iterations);
                if let Some(d) = self.cfg.request_deadline {
                    client = client.with_deadline(d);
                }
                if let Some(spec) = &self.cfg.arrival {
                    client = client.with_arrival(spec.clone(), DetRng::new(self.cfg.seed ^ 0xa11));
                }
                if let Some(target) = self.cfg.slo {
                    client = client.with_slo(target);
                }
                cluster.spawn(host, INCAST_CLIENT, Box::new(client));
            }
        }
    }

    fn is_done(&self, host: &SimHost, cluster: &Cluster) -> bool {
        // Done-flag poll only: results are extracted once, in summarize.
        match self.cfg.client {
            IncastClientKind::Pthread => {
                let m: &IncastMaster =
                    cluster.process(host, INCAST_CLIENT, Tid(0)).expect("master missing");
                m.done
            }
            IncastClientKind::Epoll => {
                let c: &IncastEpollClient =
                    cluster.process(host, INCAST_CLIENT, Tid(0)).expect("client missing");
                c.done
            }
        }
    }

    fn summarize(&self, host: &SimHost, cluster: &Cluster) -> IncastSummary {
        let (goodput_bps, iteration_times, offered) = match self.cfg.client {
            IncastClientKind::Pthread => {
                let m: &IncastMaster =
                    cluster.process(host, INCAST_CLIENT, Tid(0)).expect("master missing");
                (m.goodput_bps(self.cfg.block_bytes as u64), m.iteration_times.clone(), 0)
            }
            IncastClientKind::Epoll => {
                let c: &IncastEpollClient =
                    cluster.process(host, INCAST_CLIENT, Tid(0)).expect("client missing");
                (c.goodput_bps(), c.iteration_times.clone(), c.offered)
            }
        };
        let control = self.cp_node().map(|cp| {
            cluster
                .process::<ControlPlane>(host, cp, Tid(0))
                .expect("control plane missing")
                .report()
        });
        IncastSummary {
            goodput_bps,
            iteration_times,
            switch_drops: cluster.total_switch_drops(host),
            offered,
            control,
        }
    }

    fn failure_stats(&self, host: &SimHost, cluster: &Cluster) -> FailureStats {
        let mut failure = FailureStats::default();
        match self.cfg.client {
            IncastClientKind::Pthread => {
                for tid in 1..=self.cfg.servers {
                    let w: &IncastWorker = cluster
                        .process(host, INCAST_CLIENT, Tid(tid as u32))
                        .expect("worker missing");
                    failure.merge(&w.failure);
                }
            }
            IncastClientKind::Epoll => {
                let c: &IncastEpollClient =
                    cluster.process(host, INCAST_CLIENT, Tid(0)).expect("client missing");
                failure.merge(&c.failure);
            }
        }
        failure
    }

    fn slo_stats(&self, host: &SimHost, cluster: &Cluster) -> SloStats {
        let mut slo = SloStats::default();
        if self.cfg.client == IncastClientKind::Epoll {
            let c: &IncastEpollClient =
                cluster.process(host, INCAST_CLIENT, Tid(0)).expect("client missing");
            slo.merge(&c.slo);
        }
        slo
    }
}

/// Runs one incast configuration to completion.
///
/// # Errors
///
/// See [`ExperimentHarness::run`].
pub fn try_run_incast(cfg: &IncastConfig) -> Result<IncastResult, ExperimentError> {
    try_run_incast_with(cfg, &CheckpointPolicy::default())
}

/// Runs one incast configuration to completion under a checkpoint
/// policy (mid-run snapshot and/or restore-from-snapshot).
///
/// # Errors
///
/// See [`ExperimentHarness::run_with`].
pub fn try_run_incast_with(
    cfg: &IncastConfig,
    ckpt: &CheckpointPolicy,
) -> Result<IncastResult, ExperimentError> {
    let (summary, env) =
        ExperimentHarness::new(cfg.base()).run_with(&mut IncastWorkload { cfg }, ckpt)?;
    Ok(IncastResult {
        goodput_mbps: summary.goodput_bps / 1e6,
        iteration_times: summary.iteration_times,
        switch_drops: summary.switch_drops,
        events: env.events,
        exec: env.exec,
        metrics: env.metrics,
        series: env.series,
        conservation: env.conservation,
        failure: env.failure,
        offered: summary.offered,
        slo: env.slo,
        control: summary.control,
    })
}

/// Runs one incast configuration to completion.
///
/// # Panics
///
/// Panics if the scenario deadlocks (client never finishes within the
/// generous simulated-time budget); use [`try_run_incast`] to handle
/// that as a structured error instead.
pub fn run_incast(cfg: &IncastConfig) -> IncastResult {
    match try_run_incast(cfg) {
        Ok(r) => r,
        Err(e) => panic!("incast experiment failed ({} servers): {e}", cfg.servers),
    }
}

/// Runs only the incast warm-up prefix — build, drive to `at` — and
/// writes a restorable checkpoint there.
///
/// # Errors
///
/// See [`ExperimentHarness::warm`].
pub fn warm_incast(
    cfg: &IncastConfig,
    path: &std::path::Path,
    at: SimTime,
) -> Result<(), ExperimentError> {
    ExperimentHarness::new(cfg.base()).warm(&mut IncastWorkload { cfg }, path, at)
}

// ====================================================================
// memcached (§4.2, Figures 8-15)
// ====================================================================

/// One memcached-at-scale experiment configuration.
#[derive(Debug, Clone)]
pub struct McExperimentConfig {
    /// Racks (16 ≈ "500-node", 32 ≈ "1000-node", 64 ≈ "2000-node").
    pub racks: usize,
    /// Servers per rack (31 in the paper).
    pub servers_per_rack: usize,
    /// memcached server nodes per rack (2 in the paper: 128 servers over
    /// 64 racks).
    pub mc_per_rack: usize,
    /// Requests per client (30,000 in the paper; default far smaller).
    pub requests_per_client: u64,
    /// Transport.
    pub proto: Proto,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// memcached release.
    pub version: McVersion,
    /// Worker threads per server.
    pub workers: usize,
    /// 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// Physical fabric (baseline tree, or a 3-tier fat-tree with ECMP;
    /// see [`McExperimentConfig::on_fat_tree`]).
    pub fabric: FabricKind,
    /// Congestion control the guest kernels run; DCTCP also enables
    /// switch ECN marking.
    pub cc: CongestionControl,
    /// ECN marking threshold override in queued bytes per egress port
    /// (`None` keeps the DCTCP default, no marking under Reno).
    pub ecn_threshold: Option<u32>,
    /// Extra switch latency at every level (Figure 12).
    pub extra_switch_latency: SimDuration,
    /// Instructions of server-side application logic per request.
    pub request_work: u64,
    /// TCP clients re-open a server connection after this many uses.
    pub reconnect_every: Option<u64>,
    /// TCP clients treat a reply slower than this as a broken connection
    /// (reconnect + retry).
    pub request_deadline: Option<SimDuration>,
    /// Execution mode.
    pub mode: RunMode,
    /// Seed.
    pub seed: u64,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the result's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
    /// Open-loop arrival schedule per client: requests admitted at the
    /// profile's instants, independent of completion, and
    /// `requests_per_client` is ignored. Requires UDP.
    pub arrival: Option<ArrivalSpec>,
    /// Per-request SLO target (open-loop accounting).
    pub slo: Option<SimDuration>,
    /// Open-loop in-flight window per client: admissions past this bound
    /// are shed, not queued.
    pub window: usize,
    /// When set, a [`ControlPlane`] scheduler runs inside the simulation:
    /// every rack hosts `mc_per_rack + spares_per_rack` pool nodes (the
    /// spares parked on a service gate), each pool node runs a
    /// [`ControlAgent`] heartbeating to the scheduler, and clients
    /// discover live endpoints through registry lookups instead of the
    /// static server list. Requires an open-loop [`Self::arrival`]
    /// schedule (UDP).
    pub control: Option<ControlConfig>,
}

impl McExperimentConfig {
    /// The paper's §4.2 setup at the given rack count, scaled down to
    /// `requests_per_client` requests.
    pub fn paper(racks: usize, requests_per_client: u64) -> Self {
        McExperimentConfig {
            racks,
            servers_per_rack: 31,
            mc_per_rack: 2,
            requests_per_client,
            proto: Proto::Udp,
            kernel: KernelProfile::linux_2_6_39(),
            version: McVersion::V1_4_17,
            workers: 4,
            ten_gig: false,
            fabric: FabricKind::Tree,
            cc: CongestionControl::Reno,
            ecn_threshold: None,
            extra_switch_latency: SimDuration::ZERO,
            request_work: 2_500,
            reconnect_every: None,
            request_deadline: None,
            mode: RunMode::Serial,
            seed: 0x9eca_c4ed,
            sample_every: None,
            faults: None,
            arrival: None,
            slo: None,
            window: 64,
            control: None,
        }
    }

    /// A laptop-friendly miniature of the same shape (fewer, smaller
    /// racks) for tests and examples.
    pub fn mini(racks: usize, requests_per_client: u64) -> Self {
        McExperimentConfig {
            servers_per_rack: 6,
            mc_per_rack: 1,
            ..Self::paper(racks, requests_per_client)
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.racks * self.servers_per_rack
    }

    /// Re-targets the experiment onto a 3-tier fat-tree fabric,
    /// deriving `racks` / `servers_per_rack` from the fabric's
    /// hierarchical view (edges as racks) so the node layout — servers
    /// on the first slots of each rack, clients on the rest — carries
    /// over unchanged.
    #[must_use]
    pub fn on_fat_tree(mut self, ft: FatTreeConfig) -> Self {
        let view = ft.view();
        self.racks = view.racks;
        self.servers_per_rack = view.servers_per_rack;
        self.fabric = FabricKind::FatTree(ft);
        self
    }

    /// The shared experiment base this config describes.
    fn base(&self) -> ExperimentBase {
        let topology = TopologyConfig {
            racks: self.racks,
            servers_per_rack: self.servers_per_rack,
            racks_per_array: 16.min(self.racks),
        };
        if let FabricKind::FatTree(ft) = self.fabric {
            assert_eq!(
                (topology.racks, topology.servers_per_rack),
                (ft.view().racks, ft.view().servers_per_rack),
                "racks/servers_per_rack must match the fat-tree view: \
                 use McExperimentConfig::on_fat_tree"
            );
        }
        ExperimentBase {
            topology,
            fabric: self.fabric,
            cc: self.cc,
            ecn_threshold: self.ecn_threshold,
            kernel: self.kernel.clone(),
            cpu: None,
            ten_gig: self.ten_gig,
            tor: None,
            switch_all: None,
            extra_switch_latency: self.extra_switch_latency,
            seed: self.seed,
            mode: self.mode,
            sample_every: self.sample_every,
            faults: self.faults.clone(),
        }
    }
}

/// Aggregated memcached measurements.
#[derive(Debug, Clone)]
pub struct McExperimentResult {
    /// All client request latencies (nanoseconds).
    pub latency: Histogram,
    /// Latencies split by hop class (local / one-hop / two-hop).
    pub by_class: [Histogram; 3],
    /// Requests served by all memcached servers.
    pub served: u64,
    /// Client-side failures (UDP retry exhaustion).
    pub failures: u64,
    /// UDP retransmissions.
    pub udp_retries: u64,
    /// Simulated time consumed (run horizon).
    pub sim_time: SimTime,
    /// When the last client finished its final request.
    pub completed_at: SimTime,
    /// Events processed.
    pub events: u64,
    /// Host wall-clock time.
    pub wall: std::time::Duration,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`McExperimentConfig::sample_every`] was
    /// set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report, merged over all clients (all
    /// zeros in a fault-free run).
    pub failure: FailureStats,
    /// Arrivals the open-loop schedules offered across all clients (0 in
    /// closed-loop runs).
    pub offered: u64,
    /// Requests that expired unanswered in open-loop runs (0 in
    /// closed-loop runs, which retry instead).
    pub timed_out: u64,
    /// Open-loop SLO report: latency violations and shed admissions
    /// (empty in closed-loop runs).
    pub slo: SloStats,
    /// Control-plane counters (`None` unless
    /// [`McExperimentConfig::control`] was set).
    pub control: Option<ControlReport>,
}

/// The memcached-at-scale scenario: the first `mc_per_rack` nodes of each
/// rack serve, every remaining node runs a closed-loop client.
struct McWorkload<'a> {
    cfg: &'a McExperimentConfig,
    shareds: Vec<McSharedHandle>,
    client_addrs: Vec<NodeAddr>,
    cp: Option<NodeAddr>,
}

/// What [`McWorkload`] measures.
struct McSummary {
    latency: Histogram,
    by_class: [Histogram; 3],
    served: u64,
    failures: u64,
    udp_retries: u64,
    completed_at: SimTime,
    offered: u64,
    timed_out: u64,
    control: Option<ControlReport>,
}

impl McWorkload<'_> {
    /// Control-plane variant of [`Workload::build`]: every rack hosts
    /// `mc_per_rack + spares_per_rack` pool nodes (the spares parked on
    /// an inactive service gate), each pool node runs a [`ControlAgent`]
    /// heartbeating to the scheduler on the cluster's last node, and the
    /// remaining nodes run open-loop clients that discover live servers
    /// through registry lookups.
    fn build_controlled(&mut self, host: &mut SimHost, cluster: &Cluster, ctl: &ControlConfig) {
        let cfg = self.cfg;
        let root_rng = DetRng::new(cfg.seed);
        ctl.validate().expect("invalid ControlConfig");
        assert!(
            cfg.arrival.is_some() && cfg.proto == Proto::Udp,
            "the control plane requires the open-loop UDP memcached workload"
        );
        let pool_slots = cfg.mc_per_rack + ctl.spares_per_rack;
        assert!(
            pool_slots < cfg.servers_per_rack,
            "mc_per_rack + spares_per_rack must leave room for clients"
        );
        assert!(cfg.racks * pool_slots <= 128, "service pool is limited to 128 replicas");

        // The scheduler claims the cluster's last node (a client slot).
        let cp_node = NodeAddr((cfg.racks * cfg.servers_per_rack - 1) as u32);

        // Pool nodes: gated dispatcher + workers, plus the agent that
        // heartbeats to the scheduler and flips the gate on command.
        let mut pool = Vec::new();
        let mut agents = Vec::new();
        let mut racks = Vec::new();
        let mut initial = Vec::new();
        let pool_len = (cfg.racks * pool_slots) as u64;
        for rack in 0..cfg.racks {
            for slot in 0..pool_slots {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                let idx = pool.len();
                let active = slot < cfg.mc_per_rack;
                if active {
                    initial.push(idx);
                }
                let gate = service_gate(active);
                let scfg = McServerConfig {
                    port: MEMCACHED_PORT,
                    workers: cfg.workers,
                    version: cfg.version,
                    udp: true,
                    request_work: cfg.request_work,
                };
                let sh = mc_shared(scfg.workers);
                cluster.spawn(
                    host,
                    addr,
                    Box::new(
                        McDispatcher::new(scfg.clone(), sh.clone())
                            .with_gate(gate.clone(), gate_futex_key(0)),
                    ),
                );
                for w in 0..scfg.workers {
                    cluster.spawn(host, addr, Box::new(McWorker::new(w, scfg.clone(), sh.clone())));
                }
                self.shareds.push(sh);
                // Stagger heartbeats evenly across one period so the
                // scheduler never sees a synchronized burst.
                let stagger =
                    SimDuration::from_picos(ctl.heartbeat_every.as_picos() * idx as u64 / pool_len);
                let gates = BTreeMap::from([(0u32, gate)]);
                cluster.spawn(
                    host,
                    addr,
                    Box::new(ControlAgent::new(
                        SockAddr::new(cp_node, CONTROL_PORT),
                        ctl.heartbeat_every,
                        stagger,
                        gates,
                    )),
                );
                pool.push(SockAddr::new(addr, MEMCACHED_PORT));
                agents.push(SockAddr::new(addr, AGENT_PORT));
                racks.push(rack as u32);
            }
        }
        let initial_mask = initial.iter().fold(0u128, |m, &i| m | (1u128 << i));
        let spec = ServiceSpec { id: 0, pool: pool.clone(), agents, racks, initial };
        cluster.spawn(
            host,
            cp_node,
            Box::new(ControlPlane::new(ctl.clone(), vec![spec], CONTROL_PORT)),
        );
        self.cp = Some(cp_node);

        // Clients: every remaining node except the scheduler's, each
        // restricting its per-request server draw to the registry's
        // live-endpoint mask.
        let pool_socks: Arc<[SockAddr]> = pool.into();
        for rack in 0..cfg.racks {
            for slot in pool_slots..cfg.servers_per_rack {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                if addr == cp_node {
                    continue;
                }
                let mut ccfg = McClientConfig::udp(pool_socks.clone(), cfg.requests_per_client);
                ccfg.reconnect_every = cfg.reconnect_every;
                ccfg.request_deadline = cfg.request_deadline;
                ccfg.arrival = cfg.arrival.clone();
                ccfg.window = cfg.window;
                ccfg.slo = cfg.slo;
                ccfg.discovery = Some(DiscoveryConfig {
                    control: SockAddr::new(cp_node, CONTROL_PORT),
                    service: 0,
                    refresh_every: ctl.refresh_every,
                    initial_mask,
                });
                let rng = root_rng.derive(addr.0 as u64);
                cluster.spawn(host, addr, Box::new(McOpenLoopClient::new(ccfg, rng)));
                self.client_addrs.push(addr);
            }
        }
    }
}

impl Workload for McWorkload<'_> {
    type Summary = McSummary;

    fn name(&self) -> &str {
        "memcached"
    }

    fn budget(&self) -> SimTime {
        if let Some(spec) = &self.cfg.arrival {
            // Open loop: the schedule's horizon bounds admissions; slack
            // covers the trailing window's expiries and retransmissions.
            return SimTime::ZERO + spec.horizon() + SimDuration::from_secs(3);
        }
        SimTime::from_secs(5 + self.cfg.requests_per_client / 2)
    }

    fn initial_horizon(&self) -> SimTime {
        SimTime::from_millis(200)
    }

    fn build(&mut self, host: &mut SimHost, cluster: &Cluster) {
        let cfg = self.cfg;
        if let Some(ctl) = cfg.control.clone() {
            self.build_controlled(host, cluster, &ctl);
            return;
        }
        let topo = cluster.topo.clone();
        let root_rng = DetRng::new(cfg.seed);

        // memcached servers: the first `mc_per_rack` nodes of each rack.
        let mut server_addrs = Vec::new();
        for rack in 0..cfg.racks {
            for slot in 0..cfg.mc_per_rack {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                let scfg = McServerConfig {
                    port: MEMCACHED_PORT,
                    workers: cfg.workers,
                    version: cfg.version,
                    udp: cfg.proto == Proto::Udp,
                    request_work: cfg.request_work,
                };
                let sh = mc_shared(scfg.workers);
                cluster.spawn(host, addr, Box::new(McDispatcher::new(scfg.clone(), sh.clone())));
                for w in 0..scfg.workers {
                    cluster.spawn(host, addr, Box::new(McWorker::new(w, scfg.clone(), sh.clone())));
                }
                self.shareds.push(sh);
                server_addrs.push(SockAddr::new(addr, MEMCACHED_PORT));
            }
        }
        // One shared server list for every client on the cluster.
        let server_addrs: Arc<[SockAddr]> = server_addrs.into();

        // Clients: every remaining node.
        if cfg.arrival.is_some() {
            assert_eq!(cfg.proto, Proto::Udp, "open-loop memcached requires UDP");
        }
        for rack in 0..cfg.racks {
            for slot in cfg.mc_per_rack..cfg.servers_per_rack {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                let mut ccfg = match cfg.proto {
                    Proto::Tcp => {
                        McClientConfig::tcp(server_addrs.clone(), cfg.requests_per_client)
                    }
                    Proto::Udp => {
                        McClientConfig::udp(server_addrs.clone(), cfg.requests_per_client)
                    }
                };
                ccfg.reconnect_every = cfg.reconnect_every;
                ccfg.request_deadline = cfg.request_deadline;
                let rng = root_rng.derive(addr.0 as u64);
                if let Some(spec) = &cfg.arrival {
                    // Open loop: admissions come from the schedule (each
                    // client draws its own Poisson stream), so no start
                    // stagger and no per-hop-class split.
                    ccfg.arrival = Some(spec.clone());
                    ccfg.window = cfg.window;
                    ccfg.slo = cfg.slo;
                    cluster.spawn(host, addr, Box::new(McOpenLoopClient::new(ccfg, rng)));
                } else {
                    // Stagger client start over ~2 ms to avoid a
                    // synchronized thundering herd at t=0.
                    ccfg.start_delay = SimDuration::from_micros((addr.0 as u64 * 7) % 2_000);
                    let topo2 = topo.clone();
                    ccfg.classify = Some(Arc::new(move |server: NodeAddr| {
                        match topo2.hop_class(addr, server) {
                            HopClass::Local => 0,
                            HopClass::OneHop => 1,
                            HopClass::TwoHop => 2,
                        }
                    }));
                    cluster.spawn(host, addr, Box::new(McClient::new(ccfg, rng)));
                }
                self.client_addrs.push(addr);
            }
        }
    }

    fn is_done(&self, host: &SimHost, cluster: &Cluster) -> bool {
        if self.cfg.arrival.is_some() {
            self.client_addrs.iter().all(|&a| {
                cluster
                    .process::<McOpenLoopClient>(host, a, Tid(0))
                    .map(|c| c.done)
                    .unwrap_or(false)
            })
        } else {
            self.client_addrs.iter().all(|&a| {
                cluster.process::<McClient>(host, a, Tid(0)).map(|c| c.done).unwrap_or(false)
            })
        }
    }

    fn summarize(&self, host: &SimHost, cluster: &Cluster) -> McSummary {
        let mut latency = Histogram::new();
        let mut by_class = [Histogram::new(), Histogram::new(), Histogram::new()];
        let mut failures = 0;
        let mut udp_retries = 0;
        let mut completed_at = SimTime::ZERO;
        let mut offered = 0;
        let mut timed_out = 0;
        for &a in &self.client_addrs {
            if self.cfg.arrival.is_some() {
                let c: &McOpenLoopClient =
                    cluster.process(host, a, Tid(0)).expect("client missing");
                latency.merge(&c.latency);
                offered += c.offered;
                timed_out += c.timed_out;
                completed_at = completed_at.max(c.finished_at);
            } else {
                let c: &McClient = cluster.process(host, a, Tid(0)).expect("client missing");
                latency.merge(&c.latency);
                for (dst, src) in by_class.iter_mut().zip(&c.latency_by_class) {
                    dst.merge(src);
                }
                failures += c.failures;
                udp_retries += c.udp_retries;
                completed_at = completed_at.max(c.finished_at);
            }
        }
        let served = self.shareds.iter().map(|s| s.lock().expect("poisoned").served).sum();
        let control = self.cp.map(|cp| {
            cluster
                .process::<ControlPlane>(host, cp, Tid(0))
                .expect("control plane missing")
                .report()
        });
        McSummary {
            latency,
            by_class,
            served,
            failures,
            udp_retries,
            completed_at,
            offered,
            timed_out,
            control,
        }
    }

    fn failure_stats(&self, host: &SimHost, cluster: &Cluster) -> FailureStats {
        let mut failure = FailureStats::default();
        for &a in &self.client_addrs {
            if self.cfg.arrival.is_some() {
                let c: &McOpenLoopClient =
                    cluster.process(host, a, Tid(0)).expect("client missing");
                failure.merge(&c.failure);
            } else {
                let c: &McClient = cluster.process(host, a, Tid(0)).expect("client missing");
                failure.merge(&c.failure);
            }
        }
        failure
    }

    fn slo_stats(&self, host: &SimHost, cluster: &Cluster) -> SloStats {
        let mut slo = SloStats::default();
        if self.cfg.arrival.is_some() {
            for &a in &self.client_addrs {
                let c: &McOpenLoopClient =
                    cluster.process(host, a, Tid(0)).expect("client missing");
                slo.merge(&c.slo);
            }
        }
        slo
    }
}

/// Runs one memcached experiment to completion.
///
/// # Errors
///
/// See [`ExperimentHarness::run`].
pub fn try_run_memcached(cfg: &McExperimentConfig) -> Result<McExperimentResult, ExperimentError> {
    try_run_memcached_with(cfg, &CheckpointPolicy::default())
}

/// Runs one memcached experiment to completion under a checkpoint
/// policy (mid-run snapshot and/or restore-from-snapshot).
///
/// # Errors
///
/// See [`ExperimentHarness::run_with`].
pub fn try_run_memcached_with(
    cfg: &McExperimentConfig,
    ckpt: &CheckpointPolicy,
) -> Result<McExperimentResult, ExperimentError> {
    let mut workload = McWorkload { cfg, shareds: Vec::new(), client_addrs: Vec::new(), cp: None };
    let (summary, env) = ExperimentHarness::new(cfg.base()).run_with(&mut workload, ckpt)?;
    Ok(McExperimentResult {
        latency: summary.latency,
        by_class: summary.by_class,
        served: summary.served,
        failures: summary.failures,
        udp_retries: summary.udp_retries,
        sim_time: env.sim_time,
        completed_at: summary.completed_at,
        events: env.events,
        wall: env.wall,
        exec: env.exec,
        metrics: env.metrics,
        series: env.series,
        conservation: env.conservation,
        failure: env.failure,
        offered: summary.offered,
        timed_out: summary.timed_out,
        slo: env.slo,
        control: summary.control,
    })
}

/// Runs one memcached experiment to completion.
///
/// # Panics
///
/// Panics if clients fail to finish within the simulated-time budget; use
/// [`try_run_memcached`] to handle that as a structured error instead.
pub fn run_memcached(cfg: &McExperimentConfig) -> McExperimentResult {
    match try_run_memcached(cfg) {
        Ok(r) => r,
        Err(e) => panic!("memcached experiment failed ({} racks): {e}", cfg.racks),
    }
}

/// Runs only the memcached warm-up prefix — build, drive to `at` — and
/// writes a restorable checkpoint there.
///
/// # Errors
///
/// See [`ExperimentHarness::warm`].
pub fn warm_memcached(
    cfg: &McExperimentConfig,
    path: &std::path::Path,
    at: SimTime,
) -> Result<(), ExperimentError> {
    let mut workload = McWorkload { cfg, shareds: Vec::new(), client_addrs: Vec::new(), cp: None };
    ExperimentHarness::new(cfg.base()).warm(&mut workload, path, at)
}

// ====================================================================
// Partition-aggregate search tier
// ====================================================================

/// One partition-aggregate experiment configuration.
#[derive(Debug, Clone)]
pub struct PaExperimentConfig {
    /// Racks; each rack hosts one front-end (slot 0) and
    /// `servers_per_rack - 1` leaves.
    pub racks: usize,
    /// Servers per rack.
    pub servers_per_rack: usize,
    /// Queries per front-end.
    pub queries: u64,
    /// Per-query aggregation deadline.
    pub deadline: SimDuration,
    /// Fan each query over every leaf in the cluster instead of only the
    /// front-end's own rack (forces cross-partition traffic).
    pub cross_rack: bool,
    /// Query payload bytes.
    pub query_bytes: u32,
    /// Answer payload bytes.
    pub answer_bytes: u32,
    /// Instructions of leaf service work per query.
    pub service_work: u64,
    /// Uniform extra instructions per query (the service-time spread).
    pub service_jitter: u64,
    /// Instructions of front-end think time between queries.
    pub think: u64,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// Physical fabric (baseline tree, or a 3-tier fat-tree with ECMP;
    /// see [`PaExperimentConfig::on_fat_tree`]).
    pub fabric: FabricKind,
    /// Congestion control the guest kernels run; DCTCP also enables
    /// switch ECN marking.
    pub cc: CongestionControl,
    /// ECN marking threshold override in queued bytes per egress port
    /// (`None` keeps the DCTCP default, no marking under Reno).
    pub ecn_threshold: Option<u32>,
    /// Execution mode.
    pub mode: RunMode,
    /// Seed.
    pub seed: u64,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the result's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
    /// Open-loop arrival schedule per front-end: queries admitted at the
    /// profile's instants (window of one — a query arriving while the
    /// previous one aggregates is shed), and `queries` is ignored.
    pub arrival: Option<ArrivalSpec>,
    /// Per-query SLO target (open-loop accounting).
    pub slo: Option<SimDuration>,
    /// When set, a [`ControlPlane`] scheduler claims the last leaf slot,
    /// every remaining leaf runs a health-beacon [`ControlAgent`], and
    /// front-ends fan out only to leaves the registry reports live.
    /// Requires [`Self::cross_rack`] so every front-end shares the one
    /// cluster-wide leaf pool the registry indexes.
    pub control: Option<ControlConfig>,
}

impl PaExperimentConfig {
    /// A rack-local search tier at the given rack count, `queries`
    /// queries per front-end.
    pub fn new(racks: usize, queries: u64) -> Self {
        PaExperimentConfig {
            racks,
            servers_per_rack: 6,
            queries,
            deadline: SimDuration::from_millis(1),
            cross_rack: false,
            query_bytes: 64,
            answer_bytes: 2_048,
            service_work: 20_000,
            service_jitter: 8_000,
            think: 8_000,
            kernel: KernelProfile::linux_2_6_39(),
            ten_gig: false,
            fabric: FabricKind::Tree,
            cc: CongestionControl::Reno,
            ecn_threshold: None,
            mode: RunMode::Serial,
            seed: 0xa99_2e6a7e,
            sample_every: None,
            faults: None,
            arrival: None,
            slo: None,
            control: None,
        }
    }

    /// Leaves per front-end fan-out.
    pub fn fanout(&self) -> usize {
        let per_rack = self.servers_per_rack - 1;
        if self.cross_rack {
            per_rack * self.racks
        } else {
            per_rack
        }
    }

    /// ToR template for the search tier: the fabric's stock timing with
    /// a deeper per-port buffer. Every query lands `fanout()` answers on
    /// the front-end's downlink port inside one wire-time window; the
    /// paper's shallow 4 KB commodity buffer would drop most of that
    /// burst before the deadline mechanism ever mattered, so the
    /// aggregation tier models the deeper-buffered racks such tiers are
    /// deployed on.
    fn tor_template(&self) -> SwitchTemplate {
        let mut tor = if self.ten_gig {
            SwitchTemplate::ten_gbe_fast()
        } else {
            SwitchTemplate::gbe_shallow()
        };
        tor.buffer = BufferConfig::PerPort { bytes_per_port: 64 * 1024 };
        tor
    }

    /// Re-targets the search tier onto a 3-tier fat-tree fabric,
    /// deriving `racks` / `servers_per_rack` from the fabric's
    /// hierarchical view (edges as racks) so front-end/leaf placement
    /// carries over unchanged.
    #[must_use]
    pub fn on_fat_tree(mut self, ft: FatTreeConfig) -> Self {
        let view = ft.view();
        self.racks = view.racks;
        self.servers_per_rack = view.servers_per_rack;
        self.fabric = FabricKind::FatTree(ft);
        self
    }

    /// The shared experiment base this config describes.
    fn base(&self) -> ExperimentBase {
        let topology = TopologyConfig {
            racks: self.racks,
            servers_per_rack: self.servers_per_rack,
            racks_per_array: 16.min(self.racks),
        };
        if let FabricKind::FatTree(ft) = self.fabric {
            assert_eq!(
                (topology.racks, topology.servers_per_rack),
                (ft.view().racks, ft.view().servers_per_rack),
                "racks/servers_per_rack must match the fat-tree view: \
                 use PaExperimentConfig::on_fat_tree"
            );
        }
        ExperimentBase {
            topology,
            fabric: self.fabric,
            cc: self.cc,
            ecn_threshold: self.ecn_threshold,
            kernel: self.kernel.clone(),
            cpu: None,
            ten_gig: self.ten_gig,
            // One switch model per fabric: the deep-buffered template
            // covers every fat-tree tier, only the racks in the tree.
            tor: Some(self.tor_template()),
            switch_all: matches!(self.fabric, FabricKind::FatTree(_)).then(|| self.tor_template()),
            extra_switch_latency: SimDuration::ZERO,
            seed: self.seed,
            mode: self.mode,
            sample_every: self.sample_every,
            faults: self.faults.clone(),
        }
    }
}

/// Aggregated partition-aggregate measurements.
#[derive(Debug, Clone)]
pub struct PaExperimentResult {
    /// Full-aggregate latencies over all front-ends (nanoseconds).
    pub latency: Histogram,
    /// Queries completed (full or partial) across all front-ends.
    pub queries: u64,
    /// Queries where every leaf answered within the deadline.
    pub full_aggregates: u64,
    /// Queries that hit the deadline with answers outstanding.
    pub deadline_misses: u64,
    /// Leaf answers dropped from aggregates across the run.
    pub missing_answers: u64,
    /// Queries answered by all leaves.
    pub served: u64,
    /// When the last front-end finished.
    pub completed_at: SimTime,
    /// Simulated time consumed.
    pub sim_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Host wall-clock time.
    pub wall: std::time::Duration,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`PaExperimentConfig::sample_every`] was
    /// set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report (all zeros in a fault-free
    /// run; the deadline-bounded front-end degrades by missing answers,
    /// not by retrying).
    pub failure: FailureStats,
    /// Queries the open-loop schedules offered across all front-ends (0
    /// in closed-loop runs).
    pub offered: u64,
    /// Open-loop SLO report: query-latency violations and shed
    /// admissions (empty in closed-loop runs).
    pub slo: SloStats,
    /// Control-plane counters (`None` unless
    /// [`PaExperimentConfig::control`] was set).
    pub control: Option<ControlReport>,
}

/// The search-tier scenario: slot 0 of each rack is a front-end, the
/// remaining slots are leaves. Rack-local fan-out by default;
/// [`PaExperimentConfig::cross_rack`] widens it to the whole cluster.
struct PaWorkload<'a> {
    cfg: &'a PaExperimentConfig,
    frontends: Vec<NodeAddr>,
    cp: Option<NodeAddr>,
}

/// What [`PaWorkload`] measures.
struct PaSummary {
    latency: Histogram,
    queries: u64,
    full_aggregates: u64,
    deadline_misses: u64,
    missing_answers: u64,
    served: u64,
    completed_at: SimTime,
    offered: u64,
    control: Option<ControlReport>,
}

impl PaWorkload<'_> {
    fn leaf_addrs(&self, rack: usize) -> Vec<SockAddr> {
        let cfg = self.cfg;
        let leaves_of_rack = |r: usize| {
            (1..cfg.servers_per_rack).map(move |slot| {
                SockAddr::new(NodeAddr((r * cfg.servers_per_rack + slot) as u32), PA_PORT)
            })
        };
        if cfg.cross_rack {
            (0..cfg.racks).flat_map(leaves_of_rack).collect()
        } else {
            leaves_of_rack(rack).collect()
        }
    }

    /// Control-plane variant of [`Workload::build`]: the scheduler
    /// claims the last leaf slot, every remaining leaf runs a
    /// health-beacon [`ControlAgent`], and front-ends fan out only to
    /// leaves the registry's live-endpoint mask reports up — so a
    /// crashed leaf stops costing every query its full deadline as soon
    /// as detection lands.
    fn build_controlled(&mut self, host: &mut SimHost, cluster: &Cluster, ctl: &ControlConfig) {
        let cfg = self.cfg;
        let root_rng = DetRng::new(cfg.seed);
        ctl.validate().expect("invalid ControlConfig");
        assert!(
            cfg.cross_rack,
            "the control plane requires the cross-rack search tier (one shared leaf pool)"
        );
        // The scheduler claims the last leaf slot of the last rack.
        let cp_node = NodeAddr((cfg.racks * cfg.servers_per_rack - 1) as u32);
        let pool_len = (cfg.racks * (cfg.servers_per_rack - 1) - 1) as u64;
        assert!(pool_len >= 1, "need at least one leaf besides the scheduler");
        assert!(pool_len <= 128, "service pool is limited to 128 replicas");

        // Leaves: every non-zero slot except the scheduler's, each with
        // a pure health-beacon agent (no gate — leaves are always
        // willing; the registry only tracks their liveness).
        let mut pool = Vec::new();
        let mut agents = Vec::new();
        let mut racks = Vec::new();
        for rack in 0..cfg.racks {
            for slot in 1..cfg.servers_per_rack {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                if addr == cp_node {
                    continue;
                }
                let lcfg = PaLeafConfig {
                    port: PA_PORT,
                    service_work: cfg.service_work,
                    service_jitter: cfg.service_jitter,
                    answer_bytes: cfg.answer_bytes,
                };
                cluster.spawn(
                    host,
                    addr,
                    Box::new(PaLeaf::new(lcfg, root_rng.derive(addr.0 as u64))),
                );
                let idx = pool.len() as u64;
                let stagger =
                    SimDuration::from_picos(ctl.heartbeat_every.as_picos() * idx / pool_len);
                cluster.spawn(
                    host,
                    addr,
                    Box::new(ControlAgent::new(
                        SockAddr::new(cp_node, CONTROL_PORT),
                        ctl.heartbeat_every,
                        stagger,
                        BTreeMap::new(),
                    )),
                );
                pool.push(SockAddr::new(addr, PA_PORT));
                agents.push(SockAddr::new(addr, AGENT_PORT));
                racks.push(rack as u32);
            }
        }
        let initial: Vec<usize> = (0..pool.len()).collect();
        let initial_mask = initial.iter().fold(0u128, |m, &i| m | (1u128 << i));
        let spec = ServiceSpec { id: 0, pool: pool.clone(), agents, racks, initial };
        cluster.spawn(
            host,
            cp_node,
            Box::new(ControlPlane::new(ctl.clone(), vec![spec], CONTROL_PORT)),
        );
        self.cp = Some(cp_node);

        // Front-ends: slot 0 of each rack, fanning out over the shared
        // pool filtered by the registry mask.
        let leaves: Arc<[SockAddr]> = pool.into();
        for rack in 0..cfg.racks {
            let addr = NodeAddr((rack * cfg.servers_per_rack) as u32);
            let mut fcfg = PaFrontendConfig::new(leaves.clone(), cfg.queries);
            fcfg.deadline = cfg.deadline;
            fcfg.query_bytes = cfg.query_bytes;
            fcfg.think = cfg.think;
            fcfg.discovery = Some(DiscoveryConfig {
                control: SockAddr::new(cp_node, CONTROL_PORT),
                service: 0,
                refresh_every: ctl.refresh_every,
                initial_mask,
            });
            let fe: Box<PaFrontend> = if let Some(spec) = &cfg.arrival {
                fcfg.arrival = Some(spec.clone());
                fcfg.slo = cfg.slo;
                Box::new(PaFrontend::open_loop(fcfg, root_rng.derive(addr.0 as u64)))
            } else {
                fcfg.start_delay = SimDuration::from_micros((addr.0 as u64 * 7) % 2_000);
                Box::new(PaFrontend::new(fcfg))
            };
            cluster.spawn(host, addr, fe);
            self.frontends.push(addr);
        }
    }
}

impl Workload for PaWorkload<'_> {
    type Summary = PaSummary;

    fn name(&self) -> &str {
        "partition-aggregate"
    }

    fn budget(&self) -> SimTime {
        if let Some(spec) = &self.cfg.arrival {
            // Open loop: the schedule's horizon bounds admissions; slack
            // covers the trailing query's aggregation deadline.
            return SimTime::ZERO
                + spec.horizon()
                + self.cfg.deadline * 4
                + SimDuration::from_secs(2);
        }
        // Deadline-bounded: each query finishes within think + deadline,
        // but faults can only slow a query down to the deadline, so the
        // dominant term is queries * deadline with slack for startup.
        SimTime::from_secs(2) + self.cfg.deadline * (4 * self.cfg.queries)
    }

    fn initial_horizon(&self) -> SimTime {
        SimTime::from_millis(100)
    }

    fn build(&mut self, host: &mut SimHost, cluster: &Cluster) {
        let cfg = self.cfg;
        if let Some(ctl) = cfg.control.clone() {
            self.build_controlled(host, cluster, &ctl);
            return;
        }
        let root_rng = DetRng::new(cfg.seed);
        // Leaves first: every non-zero slot of each rack.
        for rack in 0..cfg.racks {
            for slot in 1..cfg.servers_per_rack {
                let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
                let lcfg = PaLeafConfig {
                    port: PA_PORT,
                    service_work: cfg.service_work,
                    service_jitter: cfg.service_jitter,
                    answer_bytes: cfg.answer_bytes,
                };
                cluster.spawn(
                    host,
                    addr,
                    Box::new(PaLeaf::new(lcfg, root_rng.derive(addr.0 as u64))),
                );
            }
        }
        // Front-ends: slot 0 of each rack, sharing one leaf list per
        // fan-out domain.
        let cluster_leaves: Option<Arc<[SockAddr]>> =
            cfg.cross_rack.then(|| self.leaf_addrs(0).into());
        for rack in 0..cfg.racks {
            let addr = NodeAddr((rack * cfg.servers_per_rack) as u32);
            let leaves: Arc<[SockAddr]> = match &cluster_leaves {
                Some(shared) => shared.clone(),
                None => self.leaf_addrs(rack).into(),
            };
            let mut fcfg = PaFrontendConfig::new(leaves, cfg.queries);
            fcfg.deadline = cfg.deadline;
            fcfg.query_bytes = cfg.query_bytes;
            fcfg.think = cfg.think;
            let fe: Box<PaFrontend> = if let Some(spec) = &cfg.arrival {
                // Open loop: admissions come from the schedule (each
                // front-end draws its own stream), so no start stagger.
                fcfg.arrival = Some(spec.clone());
                fcfg.slo = cfg.slo;
                Box::new(PaFrontend::open_loop(fcfg, root_rng.derive(addr.0 as u64)))
            } else {
                // Stagger front-end start so racks do not fan out in
                // lockstep.
                fcfg.start_delay = SimDuration::from_micros((addr.0 as u64 * 7) % 2_000);
                Box::new(PaFrontend::new(fcfg))
            };
            cluster.spawn(host, addr, fe);
            self.frontends.push(addr);
        }
    }

    fn is_done(&self, host: &SimHost, cluster: &Cluster) -> bool {
        self.frontends.iter().all(|&a| {
            cluster.process::<PaFrontend>(host, a, Tid(0)).map(|f| f.done).unwrap_or(false)
        })
    }

    fn summarize(&self, host: &SimHost, cluster: &Cluster) -> PaSummary {
        let mut latency = Histogram::new();
        let mut queries = 0;
        let mut full_aggregates = 0;
        let mut deadline_misses = 0;
        let mut missing_answers = 0;
        let mut completed_at = SimTime::ZERO;
        let mut offered = 0;
        for &a in &self.frontends {
            let f: &PaFrontend = cluster.process(host, a, Tid(0)).expect("front-end missing");
            latency.merge(&f.latency);
            queries += f.completed;
            full_aggregates += f.full_aggregates;
            deadline_misses += f.deadline_misses;
            missing_answers += f.missing_answers;
            completed_at = completed_at.max(f.finished_at);
            offered += f.offered;
        }
        let mut served = 0;
        for rack in 0..self.cfg.racks {
            for slot in 1..self.cfg.servers_per_rack {
                let addr = NodeAddr((rack * self.cfg.servers_per_rack + slot) as u32);
                if Some(addr) == self.cp {
                    continue;
                }
                let l: &PaLeaf = cluster.process(host, addr, Tid(0)).expect("leaf missing");
                served += l.served;
            }
        }
        let control = self.cp.map(|cp| {
            cluster
                .process::<ControlPlane>(host, cp, Tid(0))
                .expect("control plane missing")
                .report()
        });
        PaSummary {
            latency,
            queries,
            full_aggregates,
            deadline_misses,
            missing_answers,
            served,
            completed_at,
            offered,
            control,
        }
    }

    fn slo_stats(&self, host: &SimHost, cluster: &Cluster) -> SloStats {
        let mut slo = SloStats::default();
        for &a in &self.frontends {
            let f: &PaFrontend = cluster.process(host, a, Tid(0)).expect("front-end missing");
            slo.merge(&f.slo);
        }
        slo
    }
}

/// Runs one partition-aggregate experiment to completion.
///
/// # Errors
///
/// See [`ExperimentHarness::run`].
pub fn try_run_partition_aggregate(
    cfg: &PaExperimentConfig,
) -> Result<PaExperimentResult, ExperimentError> {
    try_run_partition_aggregate_with(cfg, &CheckpointPolicy::default())
}

/// Runs one partition-aggregate experiment to completion under a
/// checkpoint policy (mid-run snapshot and/or restore-from-snapshot).
///
/// # Errors
///
/// See [`ExperimentHarness::run_with`].
pub fn try_run_partition_aggregate_with(
    cfg: &PaExperimentConfig,
    ckpt: &CheckpointPolicy,
) -> Result<PaExperimentResult, ExperimentError> {
    let mut workload = PaWorkload { cfg, frontends: Vec::new(), cp: None };
    let (summary, env) = ExperimentHarness::new(cfg.base()).run_with(&mut workload, ckpt)?;
    Ok(PaExperimentResult {
        latency: summary.latency,
        queries: summary.queries,
        full_aggregates: summary.full_aggregates,
        deadline_misses: summary.deadline_misses,
        missing_answers: summary.missing_answers,
        served: summary.served,
        completed_at: summary.completed_at,
        sim_time: env.sim_time,
        events: env.events,
        wall: env.wall,
        exec: env.exec,
        metrics: env.metrics,
        series: env.series,
        conservation: env.conservation,
        failure: env.failure,
        offered: summary.offered,
        slo: env.slo,
        control: summary.control,
    })
}

/// Runs one partition-aggregate experiment to completion.
///
/// # Panics
///
/// Panics if front-ends fail to finish within the simulated-time budget;
/// use [`try_run_partition_aggregate`] to handle that as a structured
/// error instead.
pub fn run_partition_aggregate(cfg: &PaExperimentConfig) -> PaExperimentResult {
    match try_run_partition_aggregate(cfg) {
        Ok(r) => r,
        Err(e) => panic!("partition-aggregate experiment failed ({} racks): {e}", cfg.racks),
    }
}

/// Runs only the partition-aggregate warm-up prefix — build, drive to
/// `at` — and writes a restorable checkpoint there.
///
/// # Errors
///
/// See [`ExperimentHarness::warm`].
pub fn warm_partition_aggregate(
    cfg: &PaExperimentConfig,
    path: &std::path::Path,
    at: SimTime,
) -> Result<(), ExperimentError> {
    let mut workload = PaWorkload { cfg, frontends: Vec::new(), cp: None };
    ExperimentHarness::new(cfg.base()).warm(&mut workload, path, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_fig6a_point_runs() {
        let mut cfg = IncastConfig::fig6a(4);
        cfg.iterations = 3;
        let r = run_incast(&cfg);
        assert_eq!(r.iteration_times.len(), 3);
        assert!(r.goodput_mbps > 0.0);
        assert!(r.events > 1_000);
    }

    #[test]
    fn incast_collapse_at_higher_fanin() {
        let mut small = IncastConfig::fig6a(2);
        small.iterations = 3;
        let mut big = IncastConfig::fig6a(12);
        big.iterations = 3;
        let gs = run_incast(&small).goodput_mbps;
        let gb = run_incast(&big).goodput_mbps;
        assert!(gb < gs / 3.0, "expected collapse: g(2)={gs:.1} g(12)={gb:.1}");
    }

    #[test]
    fn memcached_mini_experiment_completes() {
        let cfg = McExperimentConfig::mini(2, 20);
        let r = run_memcached(&cfg);
        // 2 racks x 5 clients x 20 requests.
        assert_eq!(r.latency.count(), 200);
        assert!(r.served >= 200);
        // Hop classes are populated: with one array there are local and
        // one-hop requests.
        assert!(r.by_class[0].count() + r.by_class[1].count() + r.by_class[2].count() == 200);
    }

    #[test]
    fn memcached_tcp_mini_completes() {
        let mut cfg = McExperimentConfig::mini(2, 15);
        cfg.proto = Proto::Tcp;
        let r = run_memcached(&cfg);
        assert_eq!(r.latency.count(), 150);
        assert_eq!(r.failures, 0);
    }

    #[test]
    fn partition_aggregate_mini_completes_fault_free() {
        let cfg = PaExperimentConfig::new(2, 10);
        let r = run_partition_aggregate(&cfg);
        // 2 front-ends x 10 queries, all full aggregates with no faults.
        assert_eq!(r.queries, 20);
        assert_eq!(r.full_aggregates, 20);
        assert_eq!(r.deadline_misses, 0);
        assert_eq!(r.missing_answers, 0);
        assert_eq!(r.latency.count(), 20);
        // Every query reached every leaf: 10 queries x 5 leaves per rack.
        assert_eq!(r.served, 100);
        assert!(r.conservation.is_balanced());
    }

    #[test]
    fn partition_aggregate_cross_rack_fans_wider() {
        let mut cfg = PaExperimentConfig::new(2, 5);
        cfg.cross_rack = true;
        let r = run_partition_aggregate(&cfg);
        assert_eq!(r.queries, 10);
        // 5 queries x 10 leaves x 2 front-ends.
        assert_eq!(r.served, 100);
        assert_eq!(r.full_aggregates + r.deadline_misses, 10);
    }

    #[test]
    fn memcached_open_loop_accounts_every_admission() {
        let mut cfg = McExperimentConfig::mini(1, 0);
        cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(20)).unwrap());
        cfg.slo = Some(SimDuration::from_micros(500));
        let r = run_memcached(&cfg);
        assert!(r.offered > 0, "the schedule must admit requests");
        // Every admission resolves exactly once: completed, expired
        // unanswered, or shed at a full window.
        assert_eq!(r.offered, r.slo.completed + r.slo.shed);
        assert_eq!(r.slo.completed, r.latency.count() + r.timed_out);
        assert_eq!(r.slo.target, Some(SimDuration::from_micros(500)));
    }

    #[test]
    fn partition_aggregate_open_loop_accounts_every_admission() {
        let mut cfg = PaExperimentConfig::new(1, 0);
        cfg.arrival = Some(ArrivalSpec::constant(2_000.0, SimDuration::from_millis(20)).unwrap());
        cfg.slo = Some(SimDuration::from_micros(800));
        let r = run_partition_aggregate(&cfg);
        assert!(r.offered > 0, "the schedule must admit queries");
        assert_eq!(r.offered, r.slo.completed + r.slo.shed);
        assert_eq!(r.queries, r.slo.completed);
    }

    #[test]
    fn incast_open_loop_paces_iterations() {
        let mut cfg = IncastConfig::fig6a(2);
        cfg.client = IncastClientKind::Epoll;
        cfg.block_bytes = 64 * 1024;
        cfg.arrival = Some(ArrivalSpec::constant(100.0, SimDuration::from_millis(50)).unwrap());
        cfg.slo = Some(SimDuration::from_millis(5));
        let r = run_incast(&cfg);
        assert!(r.offered > 0, "the schedule must admit iterations");
        assert_eq!(r.offered, r.slo.completed + r.slo.shed);
        assert_eq!(r.iteration_times.len() as u64, r.slo.completed);
    }

    #[test]
    fn incast_runs_on_fat_tree_with_dctcp() {
        let mut cfg = IncastConfig::fig6a(4).on_fat_tree(FatTreeConfig::new(4));
        cfg.iterations = 2;
        cfg.cc = CongestionControl::Dctcp;
        let r = run_incast(&cfg);
        assert_eq!(r.iteration_times.len(), 2);
        assert!(r.goodput_mbps > 0.0);
        assert!(r.conservation.is_balanced());
    }

    #[test]
    fn memcached_mini_runs_on_fat_tree() {
        // k=4 fat-tree with 3 hosts/edge: 8 "racks" of 3, one memcached
        // server + two clients per edge.
        let ft = FatTreeConfig { k: 4, hosts_per_edge: 3 };
        let cfg = McExperimentConfig::mini(1, 5).on_fat_tree(ft);
        assert_eq!(cfg.racks, 8);
        assert_eq!(cfg.servers_per_rack, 3);
        let r = run_memcached(&cfg);
        // 8 racks x 2 clients x 5 requests.
        assert_eq!(r.latency.count(), 80);
        assert!(r.conservation.is_balanced());
    }

    #[test]
    fn partition_aggregate_cross_rack_runs_on_fat_tree_dctcp() {
        let mut cfg = PaExperimentConfig::new(1, 4).on_fat_tree(FatTreeConfig::new(4));
        cfg.cross_rack = true;
        cfg.cc = CongestionControl::Dctcp;
        let r = run_partition_aggregate(&cfg);
        // 8 front-ends (one per edge) x 4 queries.
        assert_eq!(r.queries, 32);
        assert!(r.conservation.is_balanced());
    }

    #[test]
    fn memcached_control_plane_steady_state_stays_clean() {
        // Fault-free controlled run: the scheduler must observe a
        // healthy fleet (no suspicions, no failovers, spares standing
        // by) while the serving replicas absorb the whole offered load.
        let mut cfg = McExperimentConfig::mini(2, 0);
        cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(30)).unwrap());
        cfg.slo = Some(SimDuration::from_millis(1));
        cfg.control = Some(ControlConfig::default());
        let r = run_memcached(&cfg);
        assert!(r.offered > 0, "the schedule must admit requests");
        assert_eq!(r.offered, r.slo.completed + r.slo.shed);
        let ctl = r.control.expect("control report present");
        assert!(ctl.heartbeats > 0, "agents must heartbeat");
        assert!(ctl.lookups > 0, "clients must refresh endpoints");
        assert_eq!(ctl.suspicions, 0, "a healthy fleet raises no suspicions");
        assert_eq!(ctl.failovers, 0);
        assert_eq!(ctl.commands_dropped, 0);
        // One service, mc_per_rack x racks = 2 desired, 2 ready.
        assert_eq!(ctl.replicas, vec![(0, 2, 2)]);
        // The fleet the clients see is exactly the ready replicas: the
        // spares never serve while gated off.
        assert!(r.latency.count() > 0);
    }

    #[test]
    fn memcached_control_plane_fails_over_a_crashed_replica() {
        // Crash serving replica node0 at 10 ms without reboot: the
        // scheduler must detect it through missed heartbeats and
        // activate the rack's spare, and clients must finish the run
        // against the re-placed fleet.
        let mut cfg = McExperimentConfig::mini(2, 0);
        cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(60)).unwrap());
        cfg.slo = Some(SimDuration::from_millis(1));
        cfg.control = Some(ControlConfig::default());
        cfg.faults = Some(FaultPlan::parse("10ms node-crash node0").expect("valid plan"));
        let r = run_memcached(&cfg);
        let ctl = r.control.expect("control report present");
        assert!(ctl.detections >= 1, "the dead replica must be detected");
        assert_eq!(ctl.failovers, 1, "exactly one replacement activation");
        assert_eq!(ctl.replicas, vec![(0, 2, 2)], "the fleet must be whole again");
        assert_eq!(ctl.replacement_latency.count(), 1);
        // Detection + command round trip is bounded by the config: dead
        // threshold + command timeout budget + fabric slack.
        let bound = SimDuration::from_millis(20).as_nanos();
        assert!(
            ctl.replacement_latency.quantile(1.0) <= bound,
            "replacement took {} ns (bound {bound} ns)",
            ctl.replacement_latency.quantile(1.0)
        );
    }

    #[test]
    fn partition_aggregate_control_plane_drops_dead_leaf_from_fanout() {
        // Crash one leaf mid-run: front-ends shrink their fan-out to the
        // remaining live leaves once detection lands, so late queries
        // aggregate fully instead of eating the deadline forever.
        let mut cfg = PaExperimentConfig::new(2, 40);
        cfg.cross_rack = true;
        cfg.control = Some(ControlConfig::default());
        cfg.faults = Some(FaultPlan::parse("5ms node-crash node1").expect("valid plan"));
        let r = run_partition_aggregate(&cfg);
        let ctl = r.control.expect("control report present");
        assert_eq!(r.queries, 80, "deadline-bounded queries always complete");
        assert!(ctl.detections >= 1, "the dead leaf must be detected");
        assert!(r.deadline_misses > 0, "queries in the detection window miss");
        assert!(r.full_aggregates > 0, "queries after the fleet shrank must aggregate fully again");
    }

    #[test]
    fn incast_monitoring_control_plane_observes_servers() {
        let mut cfg = IncastConfig::fig6a(4);
        cfg.iterations = 3;
        cfg.control = Some(ControlConfig::default());
        let r = run_incast(&cfg);
        assert_eq!(r.iteration_times.len(), 3);
        let ctl = r.control.expect("control report present");
        assert!(ctl.heartbeats > 0);
        assert_eq!(ctl.suspicions, 0, "servers stay alive through the burst");
        assert_eq!(ctl.replicas, vec![(0, 4, 4)]);
    }

    #[test]
    fn partition_aggregate_degrades_under_link_fault() {
        // node1 is a leaf of rack 0: while its link is down, rack 0's
        // front-end cannot complete an aggregate and must miss deadlines.
        // The window opens early enough to overlap the ~4 ms fault-free
        // run and closes well before the last query.
        let mut cfg = PaExperimentConfig::new(2, 40);
        cfg.faults =
            Some(FaultPlan::parse("1ms link-down node1\n4ms link-up node1").expect("valid plan"));
        let r = run_partition_aggregate(&cfg);
        assert_eq!(r.queries, 80, "deadline-bounded queries always complete");
        assert!(r.deadline_misses > 0, "a downed leaf link must cost deadlines");
        assert!(r.missing_answers >= r.deadline_misses);
        assert!(r.full_aggregates > 0, "the fault window ends before the run does");
    }
}
