//! Experiment harnesses: assembled scenarios matching the paper's case
//! studies (§4), returning the measurements the figures plot.

use crate::cluster::{Cluster, ClusterSpec, RunMode, SimHost, SwitchTemplate};
use crate::fault::FaultPlan;
use crate::observe::DropAccounting;
use diablo_apps::failure::FailureStats;
use diablo_apps::incast::{
    shared, IncastEpollClient, IncastMaster, IncastServer, IncastWorker, INCAST_PORT,
};
use diablo_apps::memcached::{
    mc_shared, McClient, McClientConfig, McDispatcher, McServerConfig, McSharedHandle, McVersion,
    McWorker, MEMCACHED_PORT,
};
use diablo_engine::prelude::{
    DetRng, EngineError, ExecReport, Frequency, Histogram, MetricsRegistry, SeriesRecorder,
    SimDuration, SimTime,
};
use diablo_net::topology::{HopClass, TopologyConfig};
use diablo_net::{NodeAddr, SockAddr};
use diablo_stack::process::{Proto, Tid};
use diablo_stack::profile::KernelProfile;
use std::sync::Arc;

// ====================================================================
// Shared run machinery
// ====================================================================

/// Advances `host` to `target`, scraping the cluster into `series` at
/// every multiple of the sampling cadence along the way. With no cadence
/// this is a plain `run_until`.
fn advance(
    host: &mut SimHost,
    cluster: &Cluster,
    target: SimTime,
    cadence: Option<SimDuration>,
    next_sample: &mut SimTime,
    series: Option<&mut SeriesRecorder>,
) -> Result<(), EngineError> {
    if let (Some(cadence), Some(series)) = (cadence, series) {
        while *next_sample <= target {
            host.run_until(*next_sample)?;
            series.sample(*next_sample, &cluster.scrape(host));
            *next_sample += cadence;
        }
    }
    host.run_until(target)?;
    Ok(())
}

/// Runs the (logically finished) simulation forward in 5 ms steps until
/// frame conservation balances — trailing ACKs and FINs have left every
/// wire — so the final scrape is a quiescent snapshot. Gives up after one
/// simulated second and returns the unbalanced audit; callers assert in
/// debug builds.
fn settle(host: &mut SimHost, cluster: &Cluster) -> DropAccounting {
    let mut t = host.now();
    for _ in 0..200 {
        let acct = cluster.drop_accounting(host);
        if acct.is_balanced() {
            return acct;
        }
        t += SimDuration::from_millis(5);
        host.run_until(t).expect("settle run failed");
    }
    cluster.drop_accounting(host)
}

// ====================================================================
// Incast (§4.1, Figure 6)
// ====================================================================

/// Which client implementation drives the incast benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncastClientKind {
    /// One blocking-socket thread per server plus a coordinator.
    Pthread,
    /// Single-threaded nonblocking epoll loop.
    Epoll,
}

/// One incast experiment configuration.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Fan-in: number of storage servers.
    pub servers: usize,
    /// Synchronized-read iterations (40 in the paper).
    pub iterations: u64,
    /// Total block bytes striped per iteration (256 KB in the paper).
    pub block_bytes: u32,
    /// Client structure.
    pub client: IncastClientKind,
    /// Server CPU clock (2 or 4 GHz in Figure 6(b)).
    pub cpu: Frequency,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// Use the 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// Override the ToR buffer (defaults to the paper's 4 KB/port).
    pub switch: Option<SwitchTemplate>,
    /// Racks to spread the servers over (1 in the paper's figures; >1
    /// exercises the partitioned executor on a multi-rack cut).
    pub racks: usize,
    /// Execution mode.
    pub mode: RunMode,
    /// Seed.
    pub seed: u64,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the result's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
    /// Per-request deadline for the epoll client (reconnect + retry on
    /// expiry). Ignored by the pthread client, which relies on the TCP
    /// retransmission timeout surfacing `ETIMEDOUT`.
    pub request_deadline: Option<SimDuration>,
}

impl IncastConfig {
    /// The paper's Figure 6(a) point: 1 Gbps shallow-buffer switch,
    /// 4 GHz CPU, pthread client.
    pub fn fig6a(servers: usize) -> Self {
        IncastConfig {
            servers,
            iterations: 10,
            block_bytes: 256 * 1024,
            client: IncastClientKind::Pthread,
            cpu: Frequency::ghz(4),
            kernel: KernelProfile::linux_2_6_39(),
            ten_gig: false,
            switch: None,
            racks: 1,
            mode: RunMode::Serial,
            seed: 0x0001_ca57,
            sample_every: None,
            faults: None,
            request_deadline: None,
        }
    }

    /// A Figure 6(b) point: 10 Gbps fabric with the given CPU and client.
    pub fn fig6b(servers: usize, ghz: u64, client: IncastClientKind) -> Self {
        IncastConfig { cpu: Frequency::ghz(ghz), ten_gig: true, client, ..Self::fig6a(servers) }
    }
}

/// Incast measurements.
#[derive(Debug, Clone)]
pub struct IncastResult {
    /// Application goodput in Mbps.
    pub goodput_mbps: f64,
    /// Per-iteration completion times.
    pub iteration_times: Vec<SimDuration>,
    /// Switch tail drops across the run.
    pub switch_drops: u64,
    /// Events processed (simulator-performance reporting).
    pub events: u64,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`IncastConfig::sample_every`] was set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report, merged over all client
    /// threads (all zeros in a fault-free run).
    pub failure: FailureStats,
}

/// Runs one incast configuration to completion.
///
/// # Panics
///
/// Panics if the scenario deadlocks (client never finishes within the
/// generous simulated-time budget).
pub fn run_incast(cfg: &IncastConfig) -> IncastResult {
    let n = cfg.servers;
    let racks = cfg.racks.max(1);
    let topo =
        TopologyConfig { racks, servers_per_rack: (n + 1).div_ceil(racks), racks_per_array: racks };
    let mut spec = if cfg.ten_gig { ClusterSpec::ten_gbe(topo) } else { ClusterSpec::gbe(topo) };
    spec.cpu = cfg.cpu;
    spec.kernel = cfg.kernel.clone();
    spec.seed = cfg.seed;
    if let Some(sw) = cfg.switch {
        spec.tor = sw;
    }
    let (mut host, cluster) = Cluster::instantiate(&spec, cfg.mode);
    if let Some(plan) = &cfg.faults {
        plan.apply(&mut host, &cluster).expect("fault plan failed to apply");
    }

    let client_addr = NodeAddr(0);
    let servers: Vec<SockAddr> =
        (1..=n).map(|i| SockAddr::new(NodeAddr(i as u32), INCAST_PORT)).collect();
    for s in &servers {
        cluster.spawn(&mut host, s.node, Box::new(IncastServer::new()));
    }
    let fragment = cfg.block_bytes / n as u32;
    match cfg.client {
        IncastClientKind::Pthread => {
            let sh = shared(n);
            cluster.spawn(
                &mut host,
                client_addr,
                Box::new(IncastMaster::new(n, cfg.iterations, sh.clone())),
            );
            for s in &servers {
                cluster.spawn(
                    &mut host,
                    client_addr,
                    Box::new(IncastWorker::new(*s, fragment, sh.clone())),
                );
            }
        }
        IncastClientKind::Epoll => {
            let mut client = IncastEpollClient::new(servers.clone(), fragment, cfg.iterations);
            if let Some(d) = cfg.request_deadline {
                client = client.with_deadline(d);
            }
            cluster.spawn(&mut host, client_addr, Box::new(client));
        }
    }

    // Worst case: every iteration eats several RTO backoffs.
    let budget = SimTime::from_secs(10 + 3 * cfg.iterations);
    let mut done = false;
    let mut horizon = SimTime::from_millis(500);
    let mut series = cfg.sample_every.map(|_| SeriesRecorder::new());
    let mut next_sample = cfg.sample_every.map_or(SimTime::ZERO, |d| SimTime::ZERO + d);
    let (goodput_bps, iteration_times) = loop {
        advance(&mut host, &cluster, horizon, cfg.sample_every, &mut next_sample, series.as_mut())
            .expect("incast run failed");
        let (finished, result) = match cfg.client {
            IncastClientKind::Pthread => {
                let m: &IncastMaster =
                    cluster.process(&host, client_addr, Tid(0)).expect("master missing");
                (m.done, (m.goodput_bps(cfg.block_bytes as u64), m.iteration_times.clone()))
            }
            IncastClientKind::Epoll => {
                let c: &IncastEpollClient =
                    cluster.process(&host, client_addr, Tid(0)).expect("client missing");
                (c.done, (c.goodput_bps(), c.iteration_times.clone()))
            }
        };
        if finished {
            done = true;
            break result;
        }
        if horizon >= budget {
            break result;
        }
        horizon = SimTime::from_picos(horizon.as_picos() * 2).min(budget);
    };
    assert!(done, "incast did not finish within {budget} ({} servers)", cfg.servers);
    let mut failure = FailureStats::default();
    match cfg.client {
        IncastClientKind::Pthread => {
            for tid in 1..=n {
                let w: &IncastWorker =
                    cluster.process(&host, client_addr, Tid(tid as u32)).expect("worker missing");
                failure.merge(&w.failure);
            }
        }
        IncastClientKind::Epoll => {
            let c: &IncastEpollClient =
                cluster.process(&host, client_addr, Tid(0)).expect("client missing");
            failure.merge(&c.failure);
        }
    }
    let conservation = settle(&mut host, &cluster);
    debug_assert!(
        conservation.is_balanced(),
        "incast frame conservation violated: {:?}",
        conservation.violations
    );
    IncastResult {
        goodput_mbps: goodput_bps / 1e6,
        iteration_times,
        switch_drops: cluster.total_switch_drops(&host),
        events: host.events_processed(),
        exec: host.exec_report(),
        metrics: cluster.scrape(&host),
        series,
        conservation,
        failure,
    }
}

// ====================================================================
// memcached (§4.2, Figures 8-15)
// ====================================================================

/// One memcached-at-scale experiment configuration.
#[derive(Debug, Clone)]
pub struct McExperimentConfig {
    /// Racks (16 ≈ "500-node", 32 ≈ "1000-node", 64 ≈ "2000-node").
    pub racks: usize,
    /// Servers per rack (31 in the paper).
    pub servers_per_rack: usize,
    /// memcached server nodes per rack (2 in the paper: 128 servers over
    /// 64 racks).
    pub mc_per_rack: usize,
    /// Requests per client (30,000 in the paper; default far smaller).
    pub requests_per_client: u64,
    /// Transport.
    pub proto: Proto,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// memcached release.
    pub version: McVersion,
    /// Worker threads per server.
    pub workers: usize,
    /// 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// Extra switch latency at every level (Figure 12).
    pub extra_switch_latency: SimDuration,
    /// Instructions of server-side application logic per request.
    pub request_work: u64,
    /// TCP clients re-open a server connection after this many uses.
    pub reconnect_every: Option<u64>,
    /// TCP clients treat a reply slower than this as a broken connection
    /// (reconnect + retry).
    pub request_deadline: Option<SimDuration>,
    /// Execution mode.
    pub mode: RunMode,
    /// Seed.
    pub seed: u64,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the result's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
}

impl McExperimentConfig {
    /// The paper's §4.2 setup at the given rack count, scaled down to
    /// `requests_per_client` requests.
    pub fn paper(racks: usize, requests_per_client: u64) -> Self {
        McExperimentConfig {
            racks,
            servers_per_rack: 31,
            mc_per_rack: 2,
            requests_per_client,
            proto: Proto::Udp,
            kernel: KernelProfile::linux_2_6_39(),
            version: McVersion::V1_4_17,
            workers: 4,
            ten_gig: false,
            extra_switch_latency: SimDuration::ZERO,
            request_work: 2_500,
            reconnect_every: None,
            request_deadline: None,
            mode: RunMode::Serial,
            seed: 0x9eca_c4ed,
            sample_every: None,
            faults: None,
        }
    }

    /// A laptop-friendly miniature of the same shape (fewer, smaller
    /// racks) for tests and examples.
    pub fn mini(racks: usize, requests_per_client: u64) -> Self {
        McExperimentConfig {
            servers_per_rack: 6,
            mc_per_rack: 1,
            ..Self::paper(racks, requests_per_client)
        }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.racks * self.servers_per_rack
    }
}

/// Aggregated memcached measurements.
#[derive(Debug, Clone)]
pub struct McExperimentResult {
    /// All client request latencies (nanoseconds).
    pub latency: Histogram,
    /// Latencies split by hop class (local / one-hop / two-hop).
    pub by_class: [Histogram; 3],
    /// Requests served by all memcached servers.
    pub served: u64,
    /// Client-side failures (UDP retry exhaustion).
    pub failures: u64,
    /// UDP retransmissions.
    pub udp_retries: u64,
    /// Simulated time consumed (run horizon).
    pub sim_time: SimTime,
    /// When the last client finished its final request.
    pub completed_at: SimTime,
    /// Events processed.
    pub events: u64,
    /// Host wall-clock time.
    pub wall: std::time::Duration,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`McExperimentConfig::sample_every`] was
    /// set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report, merged over all clients (all
    /// zeros in a fault-free run).
    pub failure: FailureStats,
}

/// Runs one memcached experiment to completion.
///
/// # Panics
///
/// Panics if clients fail to finish within the simulated-time budget.
pub fn run_memcached(cfg: &McExperimentConfig) -> McExperimentResult {
    let wall_start = std::time::Instant::now();
    let topo_cfg = TopologyConfig {
        racks: cfg.racks,
        servers_per_rack: cfg.servers_per_rack,
        racks_per_array: 16.min(cfg.racks),
    };
    let mut spec =
        if cfg.ten_gig { ClusterSpec::ten_gbe(topo_cfg) } else { ClusterSpec::gbe(topo_cfg) };
    spec.kernel = cfg.kernel.clone();
    spec.seed = cfg.seed;
    spec = spec.with_extra_switch_latency(cfg.extra_switch_latency);
    let (mut host, cluster) = Cluster::instantiate(&spec, cfg.mode);
    if let Some(plan) = &cfg.faults {
        plan.apply(&mut host, &cluster).expect("fault plan failed to apply");
    }
    let topo = cluster.topo.clone();
    let root_rng = DetRng::new(cfg.seed);

    // memcached servers: the first `mc_per_rack` nodes of each rack.
    let mut server_addrs = Vec::new();
    let mut shareds: Vec<McSharedHandle> = Vec::new();
    for rack in 0..cfg.racks {
        for slot in 0..cfg.mc_per_rack {
            let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
            let scfg = McServerConfig {
                port: MEMCACHED_PORT,
                workers: cfg.workers,
                version: cfg.version,
                udp: cfg.proto == Proto::Udp,
                request_work: cfg.request_work,
            };
            let sh = mc_shared(scfg.workers);
            cluster.spawn(&mut host, addr, Box::new(McDispatcher::new(scfg.clone(), sh.clone())));
            for w in 0..scfg.workers {
                cluster.spawn(
                    &mut host,
                    addr,
                    Box::new(McWorker::new(w, scfg.clone(), sh.clone())),
                );
            }
            shareds.push(sh);
            server_addrs.push(SockAddr::new(addr, MEMCACHED_PORT));
        }
    }

    // Clients: every remaining node.
    let mut client_addrs = Vec::new();
    for rack in 0..cfg.racks {
        for slot in cfg.mc_per_rack..cfg.servers_per_rack {
            let addr = NodeAddr((rack * cfg.servers_per_rack + slot) as u32);
            let mut ccfg = match cfg.proto {
                Proto::Tcp => McClientConfig::tcp(server_addrs.clone(), cfg.requests_per_client),
                Proto::Udp => McClientConfig::udp(server_addrs.clone(), cfg.requests_per_client),
            };
            // Stagger client start over ~2 ms to avoid a synchronized
            // thundering herd at t=0.
            ccfg.start_delay = SimDuration::from_micros((addr.0 as u64 * 7) % 2_000);
            ccfg.reconnect_every = cfg.reconnect_every;
            ccfg.request_deadline = cfg.request_deadline;
            let topo2 = topo.clone();
            ccfg.classify =
                Some(Arc::new(move |server: NodeAddr| match topo2.hop_class(addr, server) {
                    HopClass::Local => 0,
                    HopClass::OneHop => 1,
                    HopClass::TwoHop => 2,
                }));
            let rng = root_rng.derive(addr.0 as u64);
            cluster.spawn(&mut host, addr, Box::new(McClient::new(ccfg, rng)));
            client_addrs.push(addr);
        }
    }

    // Run until all clients complete.
    let budget = SimTime::from_secs(5 + cfg.requests_per_client / 2);
    let mut horizon = SimTime::from_millis(200);
    let mut series = cfg.sample_every.map(|_| SeriesRecorder::new());
    let mut next_sample = cfg.sample_every.map_or(SimTime::ZERO, |d| SimTime::ZERO + d);
    loop {
        advance(&mut host, &cluster, horizon, cfg.sample_every, &mut next_sample, series.as_mut())
            .expect("memcached run failed");
        let all_done = client_addrs.iter().all(|&a| {
            cluster.process::<McClient>(&host, a, Tid(0)).map(|c| c.done).unwrap_or(false)
        });
        if all_done {
            break;
        }
        assert!(horizon < budget, "memcached clients stuck past {budget} at {} racks", cfg.racks);
        horizon = SimTime::from_picos(horizon.as_picos() * 2).min(budget);
    }

    // Aggregate.
    let mut latency = Histogram::new();
    let mut by_class = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut failures = 0;
    let mut udp_retries = 0;
    let mut completed_at = SimTime::ZERO;
    let mut failure = FailureStats::default();
    for &a in &client_addrs {
        let c: &McClient = cluster.process(&host, a, Tid(0)).expect("client missing");
        latency.merge(&c.latency);
        for (dst, src) in by_class.iter_mut().zip(&c.latency_by_class) {
            dst.merge(src);
        }
        failures += c.failures;
        udp_retries += c.udp_retries;
        failure.merge(&c.failure);
        completed_at = completed_at.max(c.finished_at);
    }
    let served = shareds.iter().map(|s| s.lock().expect("poisoned").served).sum();
    let conservation = settle(&mut host, &cluster);
    debug_assert!(
        conservation.is_balanced(),
        "memcached frame conservation violated: {:?}",
        conservation.violations
    );
    McExperimentResult {
        latency,
        by_class,
        served,
        failures,
        udp_retries,
        sim_time: host.now(),
        completed_at,
        events: host.events_processed(),
        wall: wall_start.elapsed(),
        exec: host.exec_report(),
        metrics: cluster.scrape(&host),
        series,
        conservation,
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_fig6a_point_runs() {
        let mut cfg = IncastConfig::fig6a(4);
        cfg.iterations = 3;
        let r = run_incast(&cfg);
        assert_eq!(r.iteration_times.len(), 3);
        assert!(r.goodput_mbps > 0.0);
        assert!(r.events > 1_000);
    }

    #[test]
    fn incast_collapse_at_higher_fanin() {
        let mut small = IncastConfig::fig6a(2);
        small.iterations = 3;
        let mut big = IncastConfig::fig6a(12);
        big.iterations = 3;
        let gs = run_incast(&small).goodput_mbps;
        let gb = run_incast(&big).goodput_mbps;
        assert!(gb < gs / 3.0, "expected collapse: g(2)={gs:.1} g(12)={gb:.1}");
    }

    #[test]
    fn memcached_mini_experiment_completes() {
        let cfg = McExperimentConfig::mini(2, 20);
        let r = run_memcached(&cfg);
        // 2 racks x 5 clients x 20 requests.
        assert_eq!(r.latency.count(), 200);
        assert!(r.served >= 200);
        // Hop classes are populated: with one array there are local and
        // one-hop requests.
        assert!(r.by_class[0].count() + r.by_class[1].count() + r.by_class[2].count() == 200);
    }

    #[test]
    fn memcached_tcp_mini_completes() {
        let mut cfg = McExperimentConfig::mini(2, 15);
        cfg.proto = Proto::Tcp;
        let r = run_memcached(&cfg);
        assert_eq!(r.latency.count(), 150);
        assert_eq!(r.failures, 0);
    }
}
