//! The generic experiment lifecycle: one harness owning everything every
//! workload run shares.
//!
//! The paper drives each case study (§4.1 incast, §4.2 memcached) through
//! the same simulator lifecycle — build the array, load the software,
//! drive it to completion, collect timing. [`ExperimentHarness`] is that
//! lifecycle, written exactly once:
//!
//! 1. assemble a [`ClusterSpec`] from a shared [`ExperimentBase`]
//!    (topology, link speed, kernel, CPU, seed, executor mode);
//! 2. apply the scripted [`FaultPlan`], if any;
//! 3. let the [`Workload`] spawn its guest processes;
//! 4. drive the simulation with a doubling horizon, sampling the cluster
//!    into a [`SeriesRecorder`] at the configured cadence, until the
//!    workload reports completion — or its simulated-time budget runs
//!    out, which surfaces as [`ExperimentError::BudgetExhausted`] naming
//!    the stuck workload rather than a bare panic;
//! 5. settle trailing traffic and audit frame conservation;
//! 6. wrap the workload's own numbers in a [`RunEnvelope`] carrying the
//!    run-level measurements (events, executor report, metric scrape,
//!    series, conservation audit, failure accounting).
//!
//! Workloads implement the [`Workload`] trait: spawn processes in
//! [`build`](Workload::build), poll a done flag in
//! [`is_done`](Workload::is_done) (keep the poll cheap — it runs on every
//! horizon doubling), and extract results once in
//! [`summarize`](Workload::summarize) after completion.

use crate::cluster::{Cluster, ClusterSpec, FabricKind, RunMode, SimHost, SwitchTemplate};
use crate::fault::{FaultPlan, FaultPlanError};
use crate::observe::DropAccounting;
use crate::snapshot::{self, DriveState, SnapshotError};
use diablo_apps::arrival::SloStats;
use diablo_apps::failure::FailureStats;
use diablo_engine::prelude::{
    EngineError, ExecReport, Frequency, MetricsRegistry, SeriesRecorder, SimDuration, SimTime,
};
use diablo_net::topology::TopologyConfig;
use diablo_stack::profile::{CongestionControl, KernelProfile};

// ====================================================================
// Shared configuration
// ====================================================================

/// Default ECN marking threshold (queued bytes per egress port) applied
/// when a DCTCP run does not pin [`ExperimentBase::ecn_threshold`]
/// explicitly: deep enough to absorb a line-rate burst, shallow enough
/// that marking starts well before a 64 KB buffer tail-drops.
pub const DEFAULT_DCTCP_ECN_THRESHOLD: u32 = 16 * 1024;

/// The experiment knobs every workload shares: cluster shape, fabric and
/// speed, guest software profile, congestion control, executor selection,
/// determinism seed, fault schedule and sampling cadence.
/// Workload-specific configs embed or produce one of these; the harness
/// turns it into a [`ClusterSpec`] in exactly one place.
#[derive(Debug, Clone)]
pub struct ExperimentBase {
    /// Array shape. With a fat-tree fabric this is the fabric's
    /// hierarchical view and is derived from it during spec assembly.
    pub topology: TopologyConfig,
    /// Physical fabric (the baseline tree, or a 3-tier fat-tree whose
    /// switches run flow-consistent ECMP).
    pub fabric: FabricKind,
    /// Congestion-control algorithm the guest kernels run.
    pub cc: CongestionControl,
    /// ECN marking threshold override (queued bytes per switch egress
    /// port). `None` means automatic: [`DEFAULT_DCTCP_ECN_THRESHOLD`]
    /// when `cc` is DCTCP, no marking otherwise.
    pub ecn_threshold: Option<u32>,
    /// Guest kernel.
    pub kernel: KernelProfile,
    /// Server CPU clock override (`None` keeps the spec default).
    pub cpu: Option<Frequency>,
    /// 10 Gbps fabric instead of 1 Gbps.
    pub ten_gig: bool,
    /// ToR switch template override (`None` keeps the spec default).
    pub tor: Option<SwitchTemplate>,
    /// Switch template override for every level at once. A fat-tree is
    /// built from one commodity switch model, not a ToR/aggregation/core
    /// hierarchy of different silicon, so fat-tree experiments set this
    /// rather than [`ExperimentBase::tor`]. Applied after `tor`.
    pub switch_all: Option<SwitchTemplate>,
    /// Extra switch latency at every level (Figure 12's sweep).
    pub extra_switch_latency: SimDuration,
    /// Master seed for all derived RNG streams.
    pub seed: u64,
    /// Execution mode.
    pub mode: RunMode,
    /// When set, scrape the whole cluster at this simulated-time cadence
    /// into the envelope's time series.
    pub sample_every: Option<SimDuration>,
    /// Scripted fault schedule injected before the run starts.
    pub faults: Option<FaultPlan>,
}

impl ExperimentBase {
    /// A 1 Gbps serial-mode base over `topology` with the paper's default
    /// kernel and seed.
    pub fn new(topology: TopologyConfig) -> Self {
        ExperimentBase {
            topology,
            fabric: FabricKind::Tree,
            cc: CongestionControl::default(),
            ecn_threshold: None,
            kernel: KernelProfile::linux_2_6_39(),
            cpu: None,
            ten_gig: false,
            tor: None,
            switch_all: None,
            extra_switch_latency: SimDuration::ZERO,
            seed: 0x00D1_AB10,
            mode: RunMode::Serial,
            sample_every: None,
            faults: None,
        }
    }

    /// Assembles the cluster specification — the single place experiment
    /// configs become hardware.
    pub fn spec(&self) -> ClusterSpec {
        let mut spec = if self.ten_gig {
            ClusterSpec::ten_gbe(self.topology)
        } else {
            ClusterSpec::gbe(self.topology)
        };
        if let FabricKind::FatTree(ft) = self.fabric {
            spec = spec.with_fat_tree(ft);
        }
        spec.kernel = self.kernel.clone();
        spec.kernel.cc = self.cc;
        spec.seed = self.seed;
        if let Some(cpu) = self.cpu {
            spec.cpu = cpu;
        }
        if let Some(tor) = self.tor {
            spec.tor = tor;
        }
        if let Some(t) = self.switch_all {
            spec.tor = t;
            spec.array = t;
            spec.datacenter = t;
        }
        // ECN marking rides after the template overrides so a DCTCP run
        // keeps its marking threshold under a custom ToR template.
        let ecn = self.ecn_threshold.or_else(|| {
            (self.cc == CongestionControl::Dctcp).then_some(DEFAULT_DCTCP_ECN_THRESHOLD)
        });
        if let Some(th) = ecn {
            spec = spec.with_ecn_threshold(th);
        }
        spec.with_extra_switch_latency(self.extra_switch_latency)
    }
}

// ====================================================================
// The Workload trait
// ====================================================================

/// One simulated application driven through the experiment lifecycle.
///
/// Implementations spawn guest processes, report completion, and extract
/// their workload-specific numbers; the [`ExperimentHarness`] owns
/// everything else. See the module docs for the lifecycle and DESIGN.md
/// §11 for a how-to-add-a-workload walkthrough.
pub trait Workload {
    /// The workload-specific measurements [`summarize`](Workload::summarize)
    /// produces (per-iteration times, latency histograms, …).
    type Summary;

    /// Short name used in progress and error messages (`"incast"`,
    /// `"memcached"`, `"partition-aggregate"`).
    fn name(&self) -> &str;

    /// Simulated-time budget: the run fails with
    /// [`ExperimentError::BudgetExhausted`] if the workload has not
    /// completed by this horizon. Be generous — faults can stretch a run
    /// by many retransmission backoffs.
    fn budget(&self) -> SimTime;

    /// First drive horizon; the harness doubles it (capped at the budget)
    /// after every completion poll that comes back pending.
    fn initial_horizon(&self) -> SimTime {
        SimTime::from_millis(500)
    }

    /// Spawns the workload's guest processes into the freshly built
    /// cluster.
    fn build(&mut self, host: &mut SimHost, cluster: &Cluster);

    /// Completion poll, run after every horizon. Keep it cheap — check
    /// done flags only; extract results in
    /// [`summarize`](Workload::summarize), which runs exactly once.
    fn is_done(&self, host: &SimHost, cluster: &Cluster) -> bool;

    /// Extracts the workload's measurements after completion (called
    /// once, before the settle phase runs trailing traffic out).
    fn summarize(&self, host: &SimHost, cluster: &Cluster) -> Self::Summary;

    /// Merges client-side failure/recovery accounting over all the
    /// workload's processes (all zeros in a fault-free run).
    fn failure_stats(&self, host: &SimHost, cluster: &Cluster) -> FailureStats {
        let _ = (host, cluster);
        FailureStats::default()
    }

    /// Merges open-loop SLO accounting (offered-load violations and
    /// shed requests) over all the workload's processes. Empty for
    /// closed-loop runs — the default suits workloads without an
    /// open-loop mode.
    fn slo_stats(&self, host: &SimHost, cluster: &Cluster) -> SloStats {
        let _ = (host, cluster);
        SloStats::default()
    }
}

// ====================================================================
// Errors
// ====================================================================

/// A structured experiment failure.
#[derive(Debug)]
pub enum ExperimentError {
    /// The workload did not complete within its simulated-time budget
    /// (a deadlock, a fault schedule it cannot recover from, or a budget
    /// that is simply too small).
    BudgetExhausted {
        /// [`Workload::name`] of the stuck workload.
        workload: String,
        /// The exhausted budget.
        budget: SimTime,
        /// Simulated time when the harness gave up.
        at: SimTime,
    },
    /// The executor failed (unknown component, quantum violation, …).
    Engine(EngineError),
    /// The fault plan references targets outside the cluster.
    FaultPlan(FaultPlanError),
    /// A checkpoint file could not be written/read or failed validation
    /// (bad magic, version skew, structural-fingerprint mismatch).
    Snapshot(SnapshotError),
    /// The run finished before the requested checkpoint instant, so no
    /// snapshot was written — surfaced loudly instead of leaving a
    /// stale or missing file for the next stage to trip over.
    CheckpointUnreached {
        /// The requested snapshot instant.
        at: SimTime,
        /// When the workload actually completed.
        finished_at: SimTime,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::BudgetExhausted { workload, budget, at } => write!(
                f,
                "workload '{workload}' did not complete within its simulated-time budget \
                 {budget} (gave up at {at})"
            ),
            ExperimentError::Engine(e) => write!(f, "engine error: {e}"),
            ExperimentError::FaultPlan(e) => write!(f, "fault plan error: {e}"),
            ExperimentError::Snapshot(e) => write!(f, "{e}"),
            ExperimentError::CheckpointUnreached { at, finished_at } => write!(
                f,
                "checkpoint requested at {at} but the workload completed at {finished_at}; \
                 no snapshot was written"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<SnapshotError> for ExperimentError {
    fn from(e: SnapshotError) -> Self {
        ExperimentError::Snapshot(e)
    }
}

impl From<EngineError> for ExperimentError {
    fn from(e: EngineError) -> Self {
        ExperimentError::Engine(e)
    }
}

impl From<FaultPlanError> for ExperimentError {
    fn from(e: FaultPlanError) -> Self {
        ExperimentError::FaultPlan(e)
    }
}

// ====================================================================
// The run envelope
// ====================================================================

/// The run-level measurements common to every workload, wrapped around
/// each workload's own [`Workload::Summary`].
#[derive(Debug, Clone)]
pub struct RunEnvelope {
    /// Events processed (simulator-performance reporting).
    pub events: u64,
    /// Parallel-executor statistics (`None` for serial runs).
    pub exec: Option<ExecReport>,
    /// Final whole-cluster metric scrape (quiescent snapshot).
    pub metrics: MetricsRegistry,
    /// Periodic scrapes (when [`ExperimentBase::sample_every`] was set).
    pub series: Option<SeriesRecorder>,
    /// Frame-conservation audit at end of run. Balance is a first-class
    /// result, not a debug-only assert: check
    /// [`conserved`](RunEnvelope::conserved) (or
    /// `conservation.violations`) in release builds too.
    pub conservation: DropAccounting,
    /// Client-side failure/recovery report, merged over all the
    /// workload's processes (all zeros in a fault-free run).
    pub failure: FailureStats,
    /// Open-loop SLO report (target, violations, shed), merged over all
    /// the workload's processes. Empty for closed-loop runs.
    pub slo: SloStats,
    /// Simulated time consumed, including the settle phase.
    pub sim_time: SimTime,
    /// Host wall-clock time for the whole run.
    pub wall: std::time::Duration,
}

impl RunEnvelope {
    /// `true` when the end-of-run frame-conservation audit balanced.
    pub fn conserved(&self) -> bool {
        self.conservation.is_balanced()
    }
}

// ====================================================================
// The harness
// ====================================================================

/// Advances `host` to `target`, scraping the cluster into `series` at
/// every multiple of the sampling cadence along the way. With no cadence
/// this is a plain `run_until`.
fn advance(
    host: &mut SimHost,
    cluster: &Cluster,
    target: SimTime,
    cadence: Option<SimDuration>,
    next_sample: &mut SimTime,
    series: Option<&mut SeriesRecorder>,
) -> Result<(), EngineError> {
    if let (Some(cadence), Some(series)) = (cadence, series) {
        while *next_sample <= target {
            host.run_until(*next_sample)?;
            series.sample(*next_sample, &cluster.scrape(host));
            *next_sample += cadence;
        }
    }
    host.run_until(target)?;
    Ok(())
}

/// Runs the (logically finished) simulation forward in 5 ms steps until
/// frame conservation balances — trailing ACKs and FINs have left every
/// wire — so the final scrape is a quiescent snapshot. Gives up after one
/// simulated second and returns the unbalanced audit for the envelope to
/// report.
fn settle(host: &mut SimHost, cluster: &Cluster) -> Result<DropAccounting, EngineError> {
    let mut t = host.now();
    for _ in 0..200 {
        let acct = cluster.drop_accounting(host);
        if acct.is_balanced() {
            return Ok(acct);
        }
        t += SimDuration::from_millis(5);
        host.run_until(t)?;
    }
    Ok(cluster.drop_accounting(host))
}

/// Where a run checkpoints itself and/or restores from: the harness's
/// side of the `--checkpoint`/`--checkpoint-at`/`--restore` CLI flags.
/// The default policy does neither.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPolicy {
    /// Write a snapshot of the full simulation state to this path when
    /// simulated time reaches this instant, then keep running. The run
    /// fails with [`ExperimentError::CheckpointUnreached`] if it
    /// completes first — a silent missing snapshot would poison the
    /// stage that expects to restore it.
    pub save: Option<(std::path::PathBuf, SimTime)>,
    /// Seed the run from this snapshot instead of starting at time
    /// zero. The cluster and guest software are rebuilt from the
    /// scenario config first; the snapshot then overwrites every piece
    /// of evolving state (including fault timers still in the event
    /// queue — the fault plan is *not* re-applied).
    pub restore_from: Option<std::path::PathBuf>,
}

/// The generic experiment runner: owns the lifecycle every workload
/// shares. See the module docs for the phase-by-phase description.
#[derive(Debug, Clone)]
pub struct ExperimentHarness {
    /// The shared experiment configuration.
    pub base: ExperimentBase,
}

impl ExperimentHarness {
    /// Creates a harness over the shared configuration.
    pub fn new(base: ExperimentBase) -> Self {
        ExperimentHarness { base }
    }

    /// The structural fingerprint stamped into (and demanded of) this
    /// harness's snapshots: topology shape, fabric kind, and workload
    /// name — never sweepable knobs, so one warmed checkpoint can seed
    /// many differently-tuned sweep points, but never a cluster of a
    /// different shape.
    pub fn fingerprint(&self, workload_name: &str) -> u64 {
        let t = &self.base.topology;
        snapshot::fingerprint([
            format!("racks={}", t.racks),
            format!("servers_per_rack={}", t.servers_per_rack),
            format!("racks_per_array={}", t.racks_per_array),
            format!("fabric={}", self.base.fabric.name()),
            format!("workload={workload_name}"),
        ])
    }

    /// Runs `workload` through the full lifecycle.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::BudgetExhausted`] when the workload does not
    /// complete within [`Workload::budget`];
    /// [`ExperimentError::FaultPlan`] when the configured fault plan does
    /// not fit the cluster; [`ExperimentError::Engine`] on executor
    /// failures.
    pub fn run<W: Workload>(
        &self,
        workload: &mut W,
    ) -> Result<(W::Summary, RunEnvelope), ExperimentError> {
        self.run_with(workload, &CheckpointPolicy::default())
    }

    /// Runs only the warm-up prefix of `workload` — build the cluster,
    /// apply the fault schedule, drive to `at` — and snapshots there
    /// without running to completion. The shared first leg of a
    /// checkpoint-seeded sweep: warm once, restore many.
    ///
    /// The snapshotted drive horizon is exactly the one the doubling
    /// loop of [`run_with`](ExperimentHarness::run_with) would carry at
    /// that instant, so a run restored from a warm checkpoint is
    /// indistinguishable from one that checkpointed mid-flight.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::CheckpointUnreached`] when `at` lies beyond
    /// the workload's budget, plus the fault-plan/engine/snapshot
    /// failures of a normal run.
    pub fn warm<W: Workload>(
        &self,
        workload: &mut W,
        path: &std::path::Path,
        at: SimTime,
    ) -> Result<(), ExperimentError> {
        let spec = self.base.spec();
        let (mut host, cluster) = Cluster::instantiate(&spec, self.base.mode);
        let fingerprint = self.fingerprint(workload.name());
        let budget = workload.budget();
        if at > budget {
            return Err(ExperimentError::CheckpointUnreached { at, finished_at: budget });
        }
        if let Some(plan) = &self.base.faults {
            plan.apply(&mut host, &cluster)?;
        }
        workload.build(&mut host, &cluster);
        // Replay the doubling schedule up to the first horizon covering
        // `at` — the horizon run_with would hold when it snapshots.
        let mut horizon = workload.initial_horizon().min(budget);
        while horizon < at {
            horizon = SimTime::from_picos(horizon.as_picos() * 2).min(budget);
        }
        let mut drive = DriveState {
            horizon,
            next_sample: self.base.sample_every.map_or(SimTime::ZERO, |d| SimTime::ZERO + d),
            series: self.base.sample_every.map(|_| SeriesRecorder::new()),
        };
        advance(
            &mut host,
            &cluster,
            at,
            self.base.sample_every,
            &mut drive.next_sample,
            drive.series.as_mut(),
        )?;
        snapshot::write_snapshot_file(path, &mut host, fingerprint, &drive)?;
        Ok(())
    }

    /// Runs `workload` through the full lifecycle, optionally writing a
    /// mid-run checkpoint and/or seeding from a restored one.
    ///
    /// # Errors
    ///
    /// Everything [`ExperimentHarness::run`] can return, plus
    /// [`ExperimentError::Snapshot`] on checkpoint I/O or validation
    /// failures and [`ExperimentError::CheckpointUnreached`] when the
    /// run completes before the requested snapshot instant.
    pub fn run_with<W: Workload>(
        &self,
        workload: &mut W,
        ckpt: &CheckpointPolicy,
    ) -> Result<(W::Summary, RunEnvelope), ExperimentError> {
        let wall_start = std::time::Instant::now();

        // 1. Assemble the cluster.
        let spec = self.base.spec();
        let (mut host, cluster) = Cluster::instantiate(&spec, self.base.mode);
        let fingerprint = self.fingerprint(workload.name());
        let budget = workload.budget();

        // 2-3. Fault schedule and software — or a restored snapshot.
        let mut drive = if let Some(path) = &ckpt.restore_from {
            // Restore: rebuild structure and guest software from the
            // scenario config, then overwrite all evolving state. Fault
            // timers ride the snapshot's event queue, so the plan is
            // not re-applied (doing so would double-fire every fault).
            workload.build(&mut host, &cluster);
            snapshot::read_snapshot_file(path, &mut host, fingerprint)?
        } else {
            if let Some(plan) = &self.base.faults {
                plan.apply(&mut host, &cluster)?;
            }
            workload.build(&mut host, &cluster);
            DriveState {
                horizon: workload.initial_horizon().min(budget),
                next_sample: self.base.sample_every.map_or(SimTime::ZERO, |d| SimTime::ZERO + d),
                series: self.base.sample_every.map(|_| SeriesRecorder::new()),
            }
        };

        // 4. Drive with a doubling horizon until the workload completes,
        // snapshotting exactly at the requested instant along the way.
        let mut pending_save = ckpt.save.clone();
        loop {
            if let Some((path, at)) = &pending_save {
                if *at <= drive.horizon && *at >= host.now() {
                    advance(
                        &mut host,
                        &cluster,
                        *at,
                        self.base.sample_every,
                        &mut drive.next_sample,
                        drive.series.as_mut(),
                    )?;
                    snapshot::write_snapshot_file(path, &mut host, fingerprint, &drive)?;
                    pending_save = None;
                }
            }
            advance(
                &mut host,
                &cluster,
                drive.horizon,
                self.base.sample_every,
                &mut drive.next_sample,
                drive.series.as_mut(),
            )?;
            if workload.is_done(&host, &cluster) {
                break;
            }
            if drive.horizon >= budget {
                return Err(ExperimentError::BudgetExhausted {
                    workload: workload.name().to_string(),
                    budget,
                    at: host.now(),
                });
            }
            drive.horizon = SimTime::from_picos(drive.horizon.as_picos() * 2).min(budget);
        }
        if let Some((_, at)) = pending_save {
            return Err(ExperimentError::CheckpointUnreached { at, finished_at: host.now() });
        }
        let series = drive.series;

        // 5. Extract results, then settle trailing traffic and audit.
        let failure = workload.failure_stats(&host, &cluster);
        let slo = workload.slo_stats(&host, &cluster);
        let summary = workload.summarize(&host, &cluster);
        let conservation = settle(&mut host, &cluster)?;
        debug_assert!(
            conservation.is_balanced(),
            "{} frame conservation violated: {:?}",
            workload.name(),
            conservation.violations
        );

        // 6. Wrap it all in the envelope.
        let envelope = RunEnvelope {
            events: host.events_processed(),
            exec: host.exec_report(),
            metrics: cluster.scrape(&host),
            series,
            conservation,
            failure,
            slo,
            sim_time: host.now(),
            wall: wall_start.elapsed(),
        };
        Ok((summary, envelope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload that spawns nothing and never finishes: the harness
    /// must surface a structured budget-exhaustion error naming it, not
    /// panic.
    struct NeverDone;

    impl Workload for NeverDone {
        type Summary = ();

        fn name(&self) -> &str {
            "never-done"
        }

        fn budget(&self) -> SimTime {
            SimTime::from_millis(20)
        }

        fn initial_horizon(&self) -> SimTime {
            SimTime::from_millis(5)
        }

        fn build(&mut self, _host: &mut SimHost, _cluster: &Cluster) {}

        fn is_done(&self, _host: &SimHost, _cluster: &Cluster) -> bool {
            false
        }

        fn summarize(&self, _host: &SimHost, _cluster: &Cluster) -> Self::Summary {}
    }

    fn tiny_base() -> ExperimentBase {
        ExperimentBase::new(TopologyConfig { racks: 1, servers_per_rack: 2, racks_per_array: 1 })
    }

    #[test]
    fn budget_exhaustion_is_a_structured_error_naming_the_workload() {
        let err = ExperimentHarness::new(tiny_base())
            .run(&mut NeverDone)
            .expect_err("a never-done workload must exhaust its budget");
        match &err {
            ExperimentError::BudgetExhausted { workload, budget, at } => {
                assert_eq!(workload, "never-done");
                assert_eq!(*budget, SimTime::from_millis(20));
                assert!(*at >= SimTime::from_millis(20), "gave up before the budget: {at}");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("never-done"), "error must name the workload: {msg}");
        assert!(msg.contains("budget"), "error must mention the budget: {msg}");
    }

    /// A workload that finishes instantly exercises the full lifecycle
    /// and yields a balanced, quiescent envelope.
    struct Immediate;

    impl Workload for Immediate {
        type Summary = u32;

        fn name(&self) -> &str {
            "immediate"
        }

        fn budget(&self) -> SimTime {
            SimTime::from_millis(10)
        }

        fn build(&mut self, _host: &mut SimHost, _cluster: &Cluster) {}

        fn is_done(&self, _host: &SimHost, _cluster: &Cluster) -> bool {
            true
        }

        fn summarize(&self, _host: &SimHost, _cluster: &Cluster) -> Self::Summary {
            42
        }
    }

    #[test]
    fn trivial_workload_completes_with_conserved_envelope() {
        let (summary, env) =
            ExperimentHarness::new(tiny_base()).run(&mut Immediate).expect("run failed");
        assert_eq!(summary, 42);
        assert!(env.conserved(), "idle cluster must balance: {:?}", env.conservation.violations);
        assert_eq!(env.failure, FailureStats::default());
        assert!(env.slo.is_empty(), "closed-loop run must have an empty SLO report");
        assert!(env.exec.is_none(), "serial run has no executor report");
    }

    #[test]
    fn base_spec_assembly_applies_overrides() {
        let mut base = tiny_base();
        base.cpu = Some(Frequency::ghz(2));
        base.ten_gig = true;
        base.seed = 77;
        let spec = base.spec();
        assert_eq!(spec.cpu, Frequency::ghz(2));
        assert_eq!(spec.seed, 77);
    }
}
