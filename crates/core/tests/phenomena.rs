//! The headline churn phenomenon: memcached under open-loop load
//! absorbs a rolling crash of every serving replica when the control
//! plane is on — SLO violations stay confined to the detection + warmup
//! windows — while the same crash schedule without a control plane
//! degrades the run without bound (the static server list keeps
//! steering admissions at dead endpoints forever).

use diablo_core::{run_memcached, ArrivalSpec, ControlConfig, FaultPlan, McExperimentConfig};
use diablo_engine::prelude::SimDuration;

/// Three racks of the mini shape under a steady open-loop trace.
fn base_cfg() -> McExperimentConfig {
    let mut cfg = McExperimentConfig::mini(3, 0);
    cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(100)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    cfg
}

/// Every serving replica (rack slot 0: nodes 0, 6, 12) crashes in turn,
/// permanently.
fn rolling_crash_all_servers() -> FaultPlan {
    FaultPlan::parse(
        "20ms node-crash node0\n\
         35ms node-crash node6\n\
         50ms node-crash node12\n",
    )
    .expect("valid plan")
}

#[test]
fn control_plane_bounds_slo_damage_from_a_rolling_crash() {
    // Baseline: control plane on, no faults.
    let mut baseline = base_cfg();
    baseline.control = Some(ControlConfig::default());
    let rb = run_memcached(&baseline);
    let frac_baseline = rb.slo.violation_fraction();

    // Same trace and crash wave, control plane on: every serving
    // replica is replaced by its rack's spare.
    let mut on = base_cfg();
    on.control = Some(ControlConfig::default());
    on.faults = Some(rolling_crash_all_servers());
    let ron = run_memcached(&on);
    let ctl = ron.control.expect("control report");
    assert_eq!(ctl.failovers, 3, "each crashed replica must fail over to a spare");
    assert!(ctl.detections >= 3);
    assert_eq!(ctl.replicas, vec![(0, 3, 3)], "fleet back at full strength");
    let frac_on = ron.slo.violation_fraction();

    // Control plane off: clients keep the static list, so every crashed
    // replica keeps absorbing (and losing) its share of admissions for
    // the rest of the run.
    let mut off = base_cfg();
    off.faults = Some(rolling_crash_all_servers());
    let roff = run_memcached(&off);
    assert!(roff.control.is_none());
    let frac_off = roff.slo.violation_fraction();

    // The recovery claim, with generous margins: damage with the
    // control plane is bounded by the three detection + warmup windows
    // (~13 ms each over a 100 ms run), while the uncontrolled run loses
    // every admission from the last crash onward.
    assert!(
        frac_on <= frac_baseline + 0.35,
        "controlled crash run must recover toward baseline: \
         baseline={frac_baseline:.3} with-crashes={frac_on:.3}"
    );
    assert!(
        frac_off >= frac_on + 0.20,
        "uncontrolled run must degrade without bound: \
         off={frac_off:.3} on={frac_on:.3}"
    );
    // The controlled fleet keeps completing real work after the wave;
    // the uncontrolled one answers nothing once all replicas are dead.
    assert!(
        ron.latency.count() > roff.latency.count(),
        "control plane must preserve completions: on={} off={}",
        ron.latency.count(),
        roff.latency.count()
    );
}
