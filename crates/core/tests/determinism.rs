//! Serial-vs-partitioned determinism for control-plane runs.
//!
//! The control plane is pure guest traffic — heartbeats, lookups and
//! placement commands ride the same simulated fabric as the workload —
//! so a controlled run must produce byte-identical metric scrapes under
//! the serial executor and any partition count, with and without an
//! injected crash schedule.

use diablo_core::{
    run_memcached, run_partition_aggregate, ArrivalSpec, ControlConfig, FaultPlan,
    McExperimentConfig, PaExperimentConfig, RunMode,
};
use diablo_engine::prelude::SimDuration;

/// The bundled rolling-crash wave over the two-rack mini serving tier.
fn rolling_crash() -> FaultPlan {
    let text = include_str!("../../../scenarios/rolling_crash.fplan");
    FaultPlan::parse(text).expect("bundled plan parses")
}

/// A small controlled memcached run: two racks, one serving replica and
/// one spare per rack, open-loop clients discovering endpoints through
/// the registry.
fn controlled_mc() -> McExperimentConfig {
    let mut cfg = McExperimentConfig::mini(2, 0);
    cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(40)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    cfg.control = Some(ControlConfig::default());
    cfg
}

/// Runs the config serially and at the given partition counts, asserting
/// every scrape matches the serial one byte for byte.
fn assert_partition_invariant(mut cfg: McExperimentConfig, partitions: &[usize]) {
    cfg.mode = RunMode::Serial;
    let baseline = run_memcached(&cfg).metrics.to_json();
    for &p in partitions {
        cfg.mode = RunMode::parallel(p);
        let scrape = run_memcached(&cfg).metrics.to_json();
        assert_eq!(baseline, scrape, "metrics diverged between serial and {p}-partition runs");
    }
}

#[test]
fn controlled_memcached_is_partition_invariant() {
    assert_partition_invariant(controlled_mc(), &[2, 4]);
}

#[test]
fn controlled_memcached_under_rolling_crash_is_partition_invariant() {
    let mut cfg = controlled_mc();
    cfg.faults = Some(rolling_crash());
    assert_partition_invariant(cfg, &[2, 4]);
}

#[test]
fn controlled_partition_aggregate_is_partition_invariant() {
    let mut cfg = PaExperimentConfig::new(2, 25);
    cfg.cross_rack = true;
    cfg.control = Some(ControlConfig::default());
    cfg.faults = Some(FaultPlan::parse("5ms node-crash node1 reboot=20ms").unwrap());
    cfg.mode = RunMode::Serial;
    let baseline = run_partition_aggregate(&cfg).metrics.to_json();
    for p in [2, 4] {
        cfg.mode = RunMode::parallel(p);
        let scrape = run_partition_aggregate(&cfg).metrics.to_json();
        assert_eq!(baseline, scrape, "metrics diverged between serial and {p}-partition runs");
    }
}

#[test]
fn control_plane_off_legacy_runs_are_unchanged_by_the_new_fields() {
    // The control field defaults to None and the legacy spawn path is
    // untouched: two identical configs must still scrape identically
    // (guards against accidental coupling of the new wiring into the
    // uncontrolled path).
    let mut cfg = McExperimentConfig::mini(2, 0);
    cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(20)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    let a = run_memcached(&cfg).metrics.to_json();
    let b = run_memcached(&cfg).metrics.to_json();
    assert_eq!(a, b);
    assert!(!a.contains("control."), "uncontrolled runs must not emit control metrics");
}
