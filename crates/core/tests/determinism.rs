//! Serial-vs-partitioned determinism for control-plane runs, and the
//! checkpoint/restore golden contract.
//!
//! The control plane is pure guest traffic — heartbeats, lookups and
//! placement commands ride the same simulated fabric as the workload —
//! so a controlled run must produce byte-identical metric scrapes under
//! the serial executor and any partition count, with and without an
//! injected crash schedule. A checkpoint taken mid-run must likewise be
//! invisible: the interrupted-and-restored run's scrape is byte-equal
//! to the uninterrupted one, serial and partitioned.

use diablo_core::{
    run_memcached, run_partition_aggregate, try_run_memcached, try_run_memcached_with,
    try_run_partition_aggregate_with, warm_memcached, ArrivalSpec, CheckpointPolicy, ControlConfig,
    FaultPlan, McExperimentConfig, PaExperimentConfig, RunMode,
};
use diablo_engine::prelude::SimDuration;
use diablo_engine::time::SimTime;
use std::path::PathBuf;

/// The bundled rolling-crash wave over the two-rack mini serving tier.
fn rolling_crash() -> FaultPlan {
    let text = include_str!("../../../scenarios/rolling_crash.fplan");
    FaultPlan::parse(text).expect("bundled plan parses")
}

/// A small controlled memcached run: two racks, one serving replica and
/// one spare per rack, open-loop clients discovering endpoints through
/// the registry.
fn controlled_mc() -> McExperimentConfig {
    let mut cfg = McExperimentConfig::mini(2, 0);
    cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(40)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    cfg.control = Some(ControlConfig::default());
    cfg
}

/// Runs the config serially and at the given partition counts, asserting
/// every scrape matches the serial one byte for byte.
fn assert_partition_invariant(mut cfg: McExperimentConfig, partitions: &[usize]) {
    cfg.mode = RunMode::Serial;
    let baseline = run_memcached(&cfg).metrics.to_json();
    for &p in partitions {
        cfg.mode = RunMode::parallel(p);
        let scrape = run_memcached(&cfg).metrics.to_json();
        assert_eq!(baseline, scrape, "metrics diverged between serial and {p}-partition runs");
    }
}

#[test]
fn controlled_memcached_is_partition_invariant() {
    assert_partition_invariant(controlled_mc(), &[2, 4]);
}

#[test]
fn controlled_memcached_under_rolling_crash_is_partition_invariant() {
    let mut cfg = controlled_mc();
    cfg.faults = Some(rolling_crash());
    assert_partition_invariant(cfg, &[2, 4]);
}

#[test]
fn controlled_partition_aggregate_is_partition_invariant() {
    let mut cfg = PaExperimentConfig::new(2, 25);
    cfg.cross_rack = true;
    cfg.control = Some(ControlConfig::default());
    cfg.faults = Some(FaultPlan::parse("5ms node-crash node1 reboot=20ms").unwrap());
    cfg.mode = RunMode::Serial;
    let baseline = run_partition_aggregate(&cfg).metrics.to_json();
    for p in [2, 4] {
        cfg.mode = RunMode::parallel(p);
        let scrape = run_partition_aggregate(&cfg).metrics.to_json();
        assert_eq!(baseline, scrape, "metrics diverged between serial and {p}-partition runs");
    }
}

#[test]
fn control_plane_off_legacy_runs_are_unchanged_by_the_new_fields() {
    // The control field defaults to None and the legacy spawn path is
    // untouched: two identical configs must still scrape identically
    // (guards against accidental coupling of the new wiring into the
    // uncontrolled path).
    let mut cfg = McExperimentConfig::mini(2, 0);
    cfg.arrival = Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(20)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    let a = run_memcached(&cfg).metrics.to_json();
    let b = run_memcached(&cfg).metrics.to_json();
    assert_eq!(a, b);
    assert!(!a.contains("control."), "uncontrolled runs must not emit control metrics");
}

// ---------------------------------------------------------------------------
// Checkpoint/restore golden scenarios
// ---------------------------------------------------------------------------

fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("diablo_ckpt_golden").join(name);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// The golden round trip for one workload: an uninterrupted run, a run
/// that writes a checkpoint at t/2 (the write must not perturb it), and
/// a run restored from that checkpoint — all three scrapes byte-equal,
/// then the restore repeated under the 2-partition executor.
fn assert_checkpoint_roundtrip<R>(
    name: &str,
    run: impl Fn(&CheckpointPolicy, RunMode) -> (String, SimTime, R),
) {
    let snap = ckpt_dir(name).join("half.snap");
    let (baseline, completed_at, _) = run(&CheckpointPolicy::default(), RunMode::Serial);
    let half = SimTime::from_picos(completed_at.as_picos() / 2);
    assert!(half > SimTime::ZERO, "golden run too short to halve");

    let save = CheckpointPolicy { save: Some((snap.clone(), half)), restore_from: None };
    let (saved, _, _) = run(&save, RunMode::Serial);
    assert_eq!(baseline, saved, "{name}: writing a checkpoint must not perturb the run");

    let restore = CheckpointPolicy { save: None, restore_from: Some(snap) };
    let (restored, _, _) = run(&restore, RunMode::Serial);
    assert_eq!(baseline, restored, "{name}: serial restore must finish bit-identical");

    let (restored_par, _, _) = run(&restore, RunMode::parallel(2));
    assert_eq!(baseline, restored_par, "{name}: 2-partition restore must finish bit-identical");
}

#[test]
fn memcached_checkpoint_roundtrip_is_bit_identical() {
    let cfg = McExperimentConfig::mini(2, 40);
    assert_checkpoint_roundtrip("memcached", |ckpt, mode| {
        let mut cfg = cfg.clone();
        cfg.mode = mode;
        let r = try_run_memcached_with(&cfg, ckpt).expect("golden memcached run");
        (r.metrics.to_json(), r.completed_at, ())
    });
}

#[test]
fn partition_aggregate_checkpoint_roundtrip_is_bit_identical() {
    let mut base = PaExperimentConfig::new(2, 30);
    base.cross_rack = true;
    assert_checkpoint_roundtrip("partition_aggregate", |ckpt, mode| {
        let mut cfg = base.clone();
        cfg.mode = mode;
        let r = try_run_partition_aggregate_with(&cfg, ckpt).expect("golden pa run");
        (r.metrics.to_json(), r.completed_at, ())
    });
}

#[test]
fn checkpointed_run_under_faults_restores_bit_identically() {
    // The fault plan's timers ride the snapshot's event queue: a restore
    // must not re-apply the plan, and the post-checkpoint outage must
    // unfold exactly as in the uninterrupted run.
    let mut base = McExperimentConfig::mini(2, 30);
    base.faults = Some(FaultPlan::parse("1ms node-crash node1 reboot=500us").unwrap());
    assert_checkpoint_roundtrip("memcached_faults", |ckpt, mode| {
        let mut cfg = base.clone();
        cfg.mode = mode;
        let r = try_run_memcached_with(&cfg, ckpt).expect("golden faulted run");
        (r.metrics.to_json(), r.completed_at, ())
    });
}

#[test]
fn restore_rejects_a_mismatched_cluster_shape() {
    let snap = ckpt_dir("shape_mismatch").join("two_rack.snap");
    let cfg = McExperimentConfig::mini(2, 30);
    warm_memcached(&cfg, &snap, SimTime::from_micros(200)).expect("warm");
    let mut other = McExperimentConfig::mini(4, 30);
    other.mode = RunMode::Serial;
    let ckpt = CheckpointPolicy { save: None, restore_from: Some(snap) };
    let err = try_run_memcached_with(&other, &ckpt).expect_err("shape mismatch must fail");
    assert!(err.to_string().contains("fingerprint"), "unexpected error: {err}");
}

/// The sweep economics the orchestrator exists for: warming once and
/// restoring N points must beat N cold runs, because each restored point
/// only simulates the post-checkpoint suffix. The warm instant sits at
/// ~70% of the shortest point's horizon, so the shared prefix dominates
/// and the comparison has a wide margin.
#[test]
fn warm_once_restore_many_beats_cold_reruns() {
    // Heavy enough that simulated work dominates cluster-build and
    // snapshot-decode overhead; the warm prefix covers ~70% of the
    // shortest point, so each restored point simulates only the tail.
    let base = McExperimentConfig::mini(2, 600);
    let points: Vec<u64> = vec![600, 604, 608, 612];
    let make = |requests: u64| {
        let mut cfg = base.clone();
        cfg.requests_per_client = requests;
        cfg
    };

    let cold_started = std::time::Instant::now();
    let cold: Vec<(String, SimTime)> = points
        .iter()
        .map(|&p| {
            let r = try_run_memcached(&make(p)).expect("cold point");
            (r.metrics.to_json(), r.completed_at)
        })
        .collect();
    let cold_elapsed = cold_started.elapsed();

    // Warm to 70% of the shortest point's horizon so every point's knob
    // stays ahead of the checkpointed progress.
    let warm_at = SimTime::from_picos(cold[0].1.as_picos() * 7 / 10);
    let snap = ckpt_dir("warm_sweep").join("warm.snap");
    let warmed_started = std::time::Instant::now();
    warm_memcached(&base, &snap, warm_at).expect("warm prefix");
    let ckpt = CheckpointPolicy { save: None, restore_from: Some(snap) };
    let warmed: Vec<String> = points
        .iter()
        .map(|&p| {
            try_run_memcached_with(&make(p), &ckpt).expect("restored point").metrics.to_json()
        })
        .collect();
    let warmed_elapsed = warmed_started.elapsed();

    // The point whose knobs match the warm base is bit-identical to its
    // cold twin (the other points intentionally share the warmed prefix
    // instead of replaying a knob-specific one — that is the sweep
    // semantic, so their cold twins are not the reference).
    assert_eq!(cold[0].0, warmed[0], "base point: restored run diverged from the cold run");
    // …and the warm-once schedule is cheaper than re-warming per point.
    assert!(
        warmed_elapsed < cold_elapsed,
        "warm-once sweep ({warmed_elapsed:?}) must beat cold re-runs ({cold_elapsed:?})"
    );
}
