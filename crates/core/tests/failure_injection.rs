//! Failover behaviour of the cluster control plane under injected
//! node faults: detection through missed heartbeats, replacement onto
//! spares, drain-and-rejoin after reboot, and the latency bounds the
//! configuration promises.

use diablo_core::{run_memcached, ArrivalSpec, ControlConfig, FaultPlan, McExperimentConfig};
use diablo_engine::prelude::SimDuration;

fn controlled_mc(horizon_ms: u64) -> McExperimentConfig {
    let mut cfg = McExperimentConfig::mini(2, 0);
    cfg.arrival =
        Some(ArrivalSpec::poisson(2_000.0, SimDuration::from_millis(horizon_ms)).unwrap());
    cfg.slo = Some(SimDuration::from_millis(1));
    cfg.control = Some(ControlConfig::default());
    cfg
}

#[test]
fn crashed_replica_is_replaced_within_the_configured_window() {
    // node0 serves rack 0; its permanent crash at 10 ms must be detected
    // by silence (suspect at 5 ms, dead at 11 ms of quiet) and the
    // rack's spare activated. The replacement latency is measured from
    // the dead-declaration, so it is bounded by the activate command's
    // round trip, not the detection threshold.
    let mut cfg = controlled_mc(60);
    cfg.faults = Some(FaultPlan::parse("10ms node-crash node0").unwrap());
    let r = run_memcached(&cfg);
    let ctl = r.control.expect("control report");
    assert!(ctl.detections >= 1, "silent replica never declared dead");
    assert_eq!(ctl.failovers, 1, "exactly one spare activation");
    assert_eq!(ctl.replicas, vec![(0, 2, 2)], "fleet restored to full strength");
    assert_eq!(ctl.commands_dropped, 0, "no retry budget exhaustion on a healthy fabric");
    let worst = ctl.replacement_latency.quantile(1.0);
    let bound = (cfg.control.as_ref().unwrap().command_timeout
        * u64::from(cfg.control.as_ref().unwrap().retry_budget))
    .as_nanos();
    assert!(worst <= bound, "replacement took {worst} ns, above the command budget {bound} ns");
}

#[test]
fn rebooted_replica_rejoins_as_a_drained_spare() {
    // node0 crashes at 10 ms and reboots 20 ms later. By then its slot
    // has failed over to the spare, so the returning node must rejoin
    // drained (deactivated) rather than serve alongside its replacement.
    let mut cfg = controlled_mc(80);
    cfg.faults = Some(FaultPlan::parse("10ms node-crash node0 reboot=20ms").unwrap());
    let r = run_memcached(&cfg);
    let ctl = r.control.expect("control report");
    assert!(ctl.detections >= 1);
    assert_eq!(ctl.failovers, 1);
    assert!(ctl.rejoins >= 1, "the rebooted node's heartbeats must re-admit it");
    assert_eq!(ctl.replicas, vec![(0, 2, 2)], "still two ready replicas, not three");
}

#[test]
fn slo_recovers_after_failover_instead_of_degrading_forever() {
    // Split the run around the crash: the post-recovery tail must not be
    // starved. With a permanent crash and no control plane the dead
    // replica would eat a fixed share of every admission to the end of
    // the run; with failover the loss is confined to the detection
    // window.
    let mut cfg = controlled_mc(100);
    cfg.faults = Some(FaultPlan::parse("20ms node-crash node0").unwrap());
    let r = run_memcached(&cfg);
    let ctl = r.control.expect("control report");
    assert_eq!(ctl.failovers, 1);
    // The detection window (11 ms dead threshold + command round trip)
    // is ~15% of the run; requests lost to the dead replica are bounded
    // by the traffic share it absorbed during that window, with slack.
    let lost_frac = r.timed_out as f64 / r.offered.max(1) as f64;
    assert!(
        lost_frac < 0.15,
        "timed-out fraction {lost_frac:.3} not confined to the detection window"
    );
    // And the fleet kept serving: nearly all admissions completed.
    assert!(r.slo.completed > r.offered * 8 / 10);
}

#[test]
fn suspect_then_recovery_raises_no_failover() {
    // A link flap shorter than the dead threshold: heartbeats pause long
    // enough to raise suspicion but resume before the replica is
    // declared dead. The scheduler must log a false positive and change
    // nothing.
    let mut cfg = controlled_mc(50);
    cfg.faults = Some(FaultPlan::parse("10ms link-down node0\n17ms link-up node0").unwrap());
    let r = run_memcached(&cfg);
    let ctl = r.control.expect("control report");
    assert!(ctl.suspicions >= 1, "a 7 ms silence must raise suspicion");
    assert_eq!(ctl.detections, 0, "flap shorter than the dead threshold");
    assert_eq!(ctl.failovers, 0, "no placement change on a false positive");
    assert_eq!(ctl.false_positive_suspicions, ctl.suspicions);
    assert_eq!(ctl.replicas, vec![(0, 2, 2)]);
}
