//! # diablo-nic — the abstracted network interface card model
//!
//! DIABLO's NIC model (§3.3, Figure 4) resembles the Intel 8254x Gigabit
//! Ethernet controller: scatter/gather DMA with ring-based packet buffers in
//! host DRAM, RX/TX descriptor rings, interrupt mitigation and a NAPI-style
//! polling interface. This crate implements that device as a passive model
//! embedded in the server component (`diablo-node`): the server's event
//! handlers drive it and route its timer requests.
//!
//! Timing model:
//!
//! * **TX**: the driver posts frames to a bounded TX descriptor ring. The
//!   DMA engine streams them onto the wire back-to-back; a per-packet DMA
//!   fetch latency applies before the first bit of each frame.
//! * **RX**: arriving frames consume RX descriptors; when the ring is full
//!   frames are dropped (the overload behaviour behind receive livelock).
//!   An interrupt is asserted after `intr_delay`, but no sooner than
//!   `intr_mitigation` after the previous interrupt (ITR-style moderation).
//!   Under NAPI the driver masks interrupts and polls with a budget,
//!   re-enabling them only once the ring drains.

#![warn(missing_docs)]

use diablo_engine::metrics::{FlightRecord, FlightRing, Instrumented, MetricsVisitor};
use diablo_engine::prelude::{Counter, DetRng, SimDuration, SimTime};
use diablo_net::link::{LinkParams, LinkState, PortPeer, TxPort};
use diablo_net::Frame;
use std::collections::VecDeque;

/// Timer sub-keys the NIC asks its hosting component to schedule.
pub mod keys {
    /// TX DMA engine completion: call [`Nic::on_tx_done`](super::Nic::on_tx_done).
    pub const TX_DONE: u64 = 1;
    /// RX interrupt assertion: call [`Nic::on_rx_interrupt`](super::Nic::on_rx_interrupt).
    pub const RX_INTR: u64 = 2;
}

/// Static NIC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicConfig {
    /// TX descriptor ring entries.
    pub tx_ring: usize,
    /// RX descriptor ring entries.
    pub rx_ring: usize,
    /// Per-packet DMA descriptor fetch latency before transmission.
    pub dma_latency: SimDuration,
    /// Delay from frame stored to interrupt assertion.
    pub intr_delay: SimDuration,
    /// Minimum spacing between consecutive interrupts (interrupt
    /// throttling / mitigation).
    pub intr_mitigation: SimDuration,
}

impl Default for NicConfig {
    /// Values modeled after a server-class GbE adapter: 256-entry rings,
    /// 1 µs DMA latency, 2 µs interrupt delay, 10 µs mitigation.
    fn default() -> Self {
        NicConfig {
            tx_ring: 256,
            rx_ring: 256,
            dma_latency: SimDuration::from_micros(1),
            intr_delay: SimDuration::from_micros(2),
            intr_mitigation: SimDuration::from_micros(10),
        }
    }
}

/// NIC statistics.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Frames fully transmitted.
    pub tx_frames: Counter,
    /// Frames accepted into the RX ring.
    pub rx_frames: Counter,
    /// Frames dropped because the RX ring was full.
    pub rx_ring_drops: Counter,
    /// Frames rejected because the TX ring was full.
    pub tx_ring_rejects: Counter,
    /// Frames lost on the uplink wire (egress link loss draw).
    pub tx_loss_drops: Counter,
    /// Frames dropped on the TX path because the uplink had no carrier
    /// (link down or node crashed): swallowed at enqueue, drained from the
    /// ring when carrier was lost, or discarded at transmission start.
    pub tx_carrier_drops: Counter,
    /// Frames arriving from the wire while the uplink had no carrier.
    pub rx_carrier_drops: Counter,
    /// Interrupts asserted.
    pub interrupts: Counter,
    /// High-water mark of RX ring occupancy.
    pub rx_ring_highwater: usize,
}

/// Actions the hosting component must perform on the NIC's behalf.
///
/// The NIC is a passive model: it cannot schedule events itself, so its
/// methods return requests that the server component translates into engine
/// timers and frame sends.
#[derive(Debug, Clone, PartialEq)]
pub enum NicAction {
    /// Schedule a timer at the given absolute time with the given sub-key
    /// (see [`keys`]).
    SetTimer(SimTime, u64),
    /// Deliver `frame` to the wired peer at the given absolute time.
    SendFrame(SimTime, Frame),
}

/// Outcome of offering a received frame to the RX path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxOutcome {
    /// Stored in the RX ring.
    Stored,
    /// Dropped: the ring was full.
    Dropped,
}

/// The NIC device model. See the crate docs for the timing model.
///
/// # Examples
///
/// ```
/// use diablo_nic::{Nic, NicConfig};
/// use diablo_net::link::{LinkParams, PortPeer};
/// use diablo_engine::prelude::*;
///
/// let peer = PortPeer {
///     component: ComponentId(1),
///     port: PortNo(0),
///     params: LinkParams::gbe(500),
/// };
/// let nic = Nic::new(NicConfig::default(), peer, DetRng::new(42));
/// assert_eq!(nic.rx_queue_len(), 0);
/// ```
#[derive(Debug)]
pub struct Nic {
    cfg: NicConfig,
    tx_port: TxPort,
    tx_ring: VecDeque<Frame>,
    tx_busy: bool,
    rx_ring: VecDeque<Frame>,
    intr_masked: bool,
    intr_pending: bool,
    last_intr: Option<SimTime>,
    /// Healthy uplink parameters, captured at construction so carrier
    /// restoration can undo a degradation.
    base_params: LinkParams,
    /// Fault-driven uplink state.
    link_state: LinkState,
    rng: DetRng,
    trace: Option<FlightRing>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC wired to `peer` (the ToR switch port).
    ///
    /// `rng` drives the egress loss draw against the uplink's
    /// `loss_rate`; callers must seed it from simulation-stable identity
    /// (the node address) — never from placement — so results are
    /// identical across serial and partitioned execution.
    ///
    /// # Panics
    ///
    /// Panics if either ring size is zero, or if the uplink's loss rate is
    /// not a probability (unreachable through the public `LinkParams` API,
    /// which validates in `try_with_loss_rate`; kept as defense in depth).
    pub fn new(cfg: NicConfig, peer: PortPeer, rng: DetRng) -> Self {
        assert!(cfg.tx_ring > 0 && cfg.rx_ring > 0, "rings must be nonempty");
        assert!(
            peer.params.loss_rate_is_valid(),
            "uplink loss_rate {} is not a probability",
            peer.params.loss_rate()
        );
        Nic {
            cfg,
            tx_port: TxPort::new(peer),
            tx_ring: VecDeque::new(),
            tx_busy: false,
            rx_ring: VecDeque::new(),
            intr_masked: false,
            intr_pending: false,
            last_intr: None,
            base_params: peer.params,
            link_state: LinkState::Up,
            rng,
            trace: None,
            stats: NicStats::default(),
        }
    }

    /// Starts recording DMA/loss trace events into a bounded ring of
    /// `capacity` records (for the cross-layer flight recorder).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(FlightRing::new(capacity));
    }

    /// A copy of the recorded trace events (empty when tracing is off).
    pub fn trace(&self) -> Vec<FlightRecord> {
        self.trace.as_ref().map(FlightRing::records).unwrap_or_default()
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// Frames waiting in the RX ring.
    pub fn rx_queue_len(&self) -> usize {
        self.rx_ring.len()
    }

    /// Free TX descriptors.
    pub fn tx_free(&self) -> usize {
        self.cfg.tx_ring - self.tx_ring.len()
    }

    /// The wired peer (for route/link introspection).
    pub fn peer(&self) -> PortPeer {
        self.tx_port.peer
    }

    // ------------------------------------------------------------ faults --

    /// The fault-driven uplink state.
    pub fn link_state(&self) -> LinkState {
        self.link_state
    }

    /// `true` when the uplink has carrier (up or degraded).
    pub fn carrier(&self) -> bool {
        self.link_state.has_carrier()
    }

    /// Takes the uplink carrier down. Frames waiting in the TX ring cannot
    /// leave a dead link: they are drained and counted as
    /// [`NicStats::tx_carrier_drops`]. A transmission already on the wire
    /// keeps its committed delivery and completion timer.
    pub fn set_carrier_down(&mut self) {
        self.link_state = LinkState::Down;
        self.stats.tx_carrier_drops.add(self.tx_ring.len() as u64);
        self.tx_ring.clear();
    }

    /// Restores the uplink to its base (healthy) parameters, clearing any
    /// degradation.
    pub fn set_carrier_up(&mut self) {
        self.link_state = LinkState::Up;
        self.tx_port.peer.params = self.base_params;
    }

    /// Degrades the uplink: bandwidth scaled by the fp20 factor and loss
    /// rate replaced (see [`LinkParams::degraded_fp20`]). Restores carrier
    /// if the link was down.
    pub fn degrade_link_fp20(&mut self, bandwidth_factor_fp20: u64, loss_rate_fp20: u64) {
        self.link_state = LinkState::Degraded { bandwidth_factor_fp20, loss_rate_fp20 };
        self.tx_port.peer.params =
            self.base_params.degraded_fp20(bandwidth_factor_fp20, loss_rate_fp20);
    }

    /// Resets the device as a node crash would: carrier drops (draining the
    /// TX ring to the carrier-drop counter), the RX ring is lost, and the
    /// interrupt state clears. Cumulative statistics survive — the
    /// conservation book is about the network's history, not the device's
    /// uptime. The host brings carrier back with
    /// [`Nic::set_carrier_up`] on reboot.
    pub fn reset_after_crash(&mut self) {
        self.set_carrier_down();
        self.rx_ring.clear();
        self.tx_busy = false;
        self.intr_masked = false;
        self.intr_pending = false;
        self.last_intr = None;
    }

    // ---------------------------------------------------------------- TX --

    /// Driver posts a frame for transmission.
    ///
    /// Returns `false` (and counts a reject) when the TX ring is full — the
    /// driver must back off and retry after a TX completion, which is how
    /// the OS queue discipline applies backpressure.
    pub fn tx_enqueue(&mut self, frame: Frame, now: SimTime, actions: &mut Vec<NicAction>) -> bool {
        if !self.carrier() {
            // Carrier-down semantics: the frame is accepted and silently
            // dropped (counted), like an interface in NO-CARRIER — the
            // stack must not spin retrying against a dead link.
            self.stats.tx_carrier_drops.incr();
            drop(frame);
            return true;
        }
        if self.tx_ring.len() >= self.cfg.tx_ring {
            self.stats.tx_ring_rejects.incr();
            return false;
        }
        self.tx_ring.push_back(frame);
        if !self.tx_busy {
            self.start_tx(now, actions);
        }
        true
    }

    fn start_tx(&mut self, now: SimTime, actions: &mut Vec<NicAction>) {
        if !self.carrier() {
            // Carrier lost between completions: nothing can leave.
            self.stats.tx_carrier_drops.add(self.tx_ring.len() as u64);
            self.tx_ring.clear();
            self.tx_busy = false;
            return;
        }
        let Some(frame) = self.tx_ring.pop_front() else {
            self.tx_busy = false;
            return;
        };
        self.tx_busy = true;
        let wire = frame.wire_bytes();
        let timing = self.tx_port.transmit(now + self.cfg.dma_latency, wire);
        if let Some(tr) = &mut self.trace {
            tr.push(FlightRecord::new(timing.start, "nic_dma_tx", wire as u64, 0));
        }
        let loss = self.tx_port.peer.params.loss_rate();
        debug_assert!(
            self.tx_port.peer.params.loss_rate_is_valid(),
            "uplink loss_rate {loss} is not a probability"
        );
        // Egress link loss: the frame occupies the wire either way (the TX
        // completion timer is unconditional), but a lost frame is never
        // delivered — the mirror image of the switch's egress loss draw,
        // which previously made lossy links one-sided (switch->node only).
        if self.rng.chance(loss) {
            self.stats.tx_loss_drops.incr();
            if let Some(tr) = &mut self.trace {
                tr.push(FlightRecord {
                    at: timing.end,
                    kind: "nic_tx_loss",
                    detail: "wire",
                    a: wire as u64,
                    b: 0,
                });
            }
        } else {
            self.stats.tx_frames.incr();
            actions.push(NicAction::SendFrame(timing.arrival, frame));
        }
        actions.push(NicAction::SetTimer(timing.end, keys::TX_DONE));
    }

    /// Handles the TX completion timer: starts the next transmission if any.
    ///
    /// Returns `true` if TX descriptors were freed (the stack may have
    /// backlogged output to flush).
    pub fn on_tx_done(&mut self, now: SimTime, actions: &mut Vec<NicAction>) -> bool {
        self.start_tx(now, actions);
        true
    }

    // ---------------------------------------------------------------- RX --

    /// A frame arrived from the wire.
    pub fn rx_frame(
        &mut self,
        frame: Frame,
        now: SimTime,
        actions: &mut Vec<NicAction>,
    ) -> RxOutcome {
        if !self.carrier() {
            // No carrier (link down or host crashed): the wire-committed
            // frame arrives at a dead interface and is lost. Counted so
            // the switch-to-node conservation book still balances.
            self.stats.rx_carrier_drops.incr();
            return RxOutcome::Dropped;
        }
        if self.rx_ring.len() >= self.cfg.rx_ring {
            self.stats.rx_ring_drops.incr();
            return RxOutcome::Dropped;
        }
        self.rx_ring.push_back(frame);
        self.stats.rx_frames.incr();
        self.stats.rx_ring_highwater = self.stats.rx_ring_highwater.max(self.rx_ring.len());
        if !self.intr_masked && !self.intr_pending {
            let at = self.next_intr_time(now);
            self.intr_pending = true;
            self.last_intr = Some(at);
            actions.push(NicAction::SetTimer(at, keys::RX_INTR));
        }
        RxOutcome::Stored
    }

    /// Handles the RX interrupt timer.
    ///
    /// Returns `true` if the interrupt is live (the driver should mask and
    /// schedule a NAPI poll); `false` for stale interrupts (already masked
    /// or ring already drained).
    pub fn on_rx_interrupt(&mut self) -> bool {
        self.intr_pending = false;
        if self.intr_masked || self.rx_ring.is_empty() {
            return false;
        }
        self.stats.interrupts.incr();
        self.intr_masked = true;
        true
    }

    /// NAPI poll: removes up to `budget` frames from the RX ring.
    pub fn rx_poll(&mut self, budget: usize) -> Vec<Frame> {
        let n = budget.min(self.rx_ring.len());
        self.rx_ring.drain(..n).collect()
    }

    /// Re-enables interrupts after a NAPI poll cycle that drained the ring.
    ///
    /// If frames raced in meanwhile, an immediate interrupt is scheduled
    /// (subject to mitigation).
    pub fn unmask_interrupts(&mut self, now: SimTime, actions: &mut Vec<NicAction>) {
        self.intr_masked = false;
        if !self.rx_ring.is_empty() && !self.intr_pending {
            let at = self.next_intr_time(now);
            self.intr_pending = true;
            self.last_intr = Some(at);
            actions.push(NicAction::SetTimer(at, keys::RX_INTR));
        }
    }

    /// Earliest legal assertion time for a new interrupt: after the
    /// assertion delay, and no closer than the mitigation interval to the
    /// previous interrupt.
    fn next_intr_time(&self, now: SimTime) -> SimTime {
        let at = now + self.cfg.intr_delay;
        match self.last_intr {
            Some(prev) => at.max(prev + self.cfg.intr_mitigation),
            None => at,
        }
    }
}

impl Instrumented for Nic {
    fn visit_metrics(&self, v: &mut dyn MetricsVisitor) {
        v.counter("tx_frames", self.stats.tx_frames.get());
        v.counter("tx_loss_drops", self.stats.tx_loss_drops.get());
        v.counter("tx_ring_rejects", self.stats.tx_ring_rejects.get());
        v.counter("tx_carrier_drops", self.stats.tx_carrier_drops.get());
        v.counter("rx_frames", self.stats.rx_frames.get());
        v.counter("rx_ring_drops", self.stats.rx_ring_drops.get());
        v.counter("rx_carrier_drops", self.stats.rx_carrier_drops.get());
        v.counter("interrupts", self.stats.interrupts.get());
        v.counter("rx_ring_highwater", self.stats.rx_ring_highwater as u64);
        v.gauge("rx_queue_len", self.rx_ring.len() as f64);
        v.gauge("tx_queue_len", self.tx_ring.len() as f64);
    }

    fn flight_records(&self) -> Vec<FlightRecord> {
        self.trace()
    }
}

diablo_engine::impl_snap_struct!(NicStats {
    tx_frames,
    rx_frames,
    rx_ring_drops,
    tx_ring_rejects,
    tx_loss_drops,
    tx_carrier_drops,
    rx_carrier_drops,
    interrupts,
    rx_ring_highwater
});

// Device state for checkpoint/restore, chained into the hosting server
// component's snapshot. `tx_port` rides whole so fault-degraded uplink
// params restore exactly; `cfg` and `base_params` are rebuilt from
// configuration and `trace` (static-str flight records) is excluded.
diablo_engine::impl_persist_fields!(Nic {
    tx_port,
    tx_ring,
    tx_busy,
    rx_ring,
    intr_masked,
    intr_pending,
    last_intr,
    link_state,
    rng,
    stats
});

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_engine::event::{ComponentId, PortNo};
    use diablo_net::addr::NodeAddr;
    use diablo_net::frame::Route;
    use diablo_net::link::LinkParams;
    use diablo_net::payload::{AppMessage, IpPacket, UdpDatagram};

    fn frame(payload: u32) -> Frame {
        let d = UdpDatagram {
            src_port: 1,
            dst_port: 2,
            msg: AppMessage::new(0, 0, payload, SimTime::ZERO),
        };
        Frame::new(IpPacket::udp(NodeAddr(0), NodeAddr(1), d), Route::new(vec![0]))
    }

    fn nic(cfg: NicConfig) -> Nic {
        nic_with_loss(cfg, 0.0)
    }

    fn nic_with_loss(cfg: NicConfig, loss: f64) -> Nic {
        let peer = PortPeer {
            component: ComponentId(1),
            port: PortNo(0),
            params: LinkParams::gbe(500).with_loss_rate(loss),
        };
        Nic::new(cfg, peer, DetRng::new(7))
    }

    fn send_times(actions: &[NicAction]) -> Vec<SimTime> {
        actions
            .iter()
            .filter_map(|a| match a {
                NicAction::SendFrame(t, _) => Some(*t),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tx_serializes_back_to_back_with_dma_prefix() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        let t0 = SimTime::from_micros(100);
        assert!(n.tx_enqueue(frame(1000), t0, &mut actions));
        assert!(n.tx_enqueue(frame(1000), t0, &mut actions));
        // First frame: dma 1 us, then 1066B wire = 8.528 us, prop 500 ns.
        assert_eq!(send_times(&actions), vec![SimTime::from_nanos(100_000 + 1_000 + 8_528 + 500)]);
        // Completion timer fires; second frame goes out after its own DMA.
        let done = actions
            .iter()
            .find_map(|a| match a {
                NicAction::SetTimer(t, k) if *k == keys::TX_DONE => Some(*t),
                _ => None,
            })
            .unwrap();
        actions.clear();
        n.on_tx_done(done, &mut actions);
        let second = send_times(&actions)[0];
        assert_eq!(second, done + SimDuration::from_nanos(1_000 + 8_528 + 500));
    }

    #[test]
    fn tx_ring_rejects_when_full() {
        let cfg = NicConfig { tx_ring: 2, ..NicConfig::default() };
        let mut n = nic(cfg);
        let mut actions = Vec::new();
        let t0 = SimTime::ZERO;
        assert!(n.tx_enqueue(frame(100), t0, &mut actions)); // popped into flight
        assert!(n.tx_enqueue(frame(100), t0, &mut actions));
        assert!(n.tx_enqueue(frame(100), t0, &mut actions));
        assert!(!n.tx_enqueue(frame(100), t0, &mut actions));
        assert_eq!(n.stats().tx_ring_rejects.get(), 1);
        assert_eq!(n.tx_free(), 0);
    }

    #[test]
    fn egress_loss_drops_frames_but_keeps_wire_timing() {
        let mut n = nic_with_loss(NicConfig::default(), 1.0);
        n.enable_trace(16);
        let mut actions = Vec::new();
        assert!(n.tx_enqueue(frame(1000), SimTime::ZERO, &mut actions));
        // Every frame is lost: no SendFrame, but TX_DONE still fires
        // because the frame occupied the wire.
        assert!(send_times(&actions).is_empty());
        assert!(actions.iter().any(|a| matches!(a, NicAction::SetTimer(_, keys::TX_DONE))));
        assert_eq!(n.stats().tx_loss_drops.get(), 1);
        assert_eq!(n.stats().tx_frames.get(), 0);
        let trace = n.trace();
        assert!(trace.iter().any(|r| r.kind == "nic_dma_tx"));
        assert!(trace.iter().any(|r| r.kind == "nic_tx_loss"));
    }

    #[test]
    fn lossless_uplink_never_draws_a_drop() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        for _ in 0..50 {
            n.tx_enqueue(frame(100), SimTime::ZERO, &mut actions);
            let done = actions
                .iter()
                .find_map(|a| match a {
                    NicAction::SetTimer(t, k) if *k == keys::TX_DONE => Some(*t),
                    _ => None,
                })
                .unwrap();
            actions.clear();
            n.on_tx_done(done, &mut actions);
            actions.clear();
        }
        assert_eq!(n.stats().tx_loss_drops.get(), 0);
        assert_eq!(n.stats().tx_frames.get(), 50);
    }

    #[test]
    fn invalid_loss_rate_rejected_by_constructor() {
        // The raw-field write path is gone; the fallible constructor is
        // the only way to set a loss rate, and it rejects bad input.
        assert!(LinkParams::gbe(500).try_with_loss_rate(f64::NAN).is_err());
        assert!(LinkParams::gbe(500).try_with_loss_rate(2.0).is_err());
    }

    #[test]
    fn carrier_down_swallows_tx_and_drops_rx_until_up() {
        use diablo_net::link::LinkState;
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        // Queue two frames: one goes into flight, one waits in the ring.
        assert!(n.tx_enqueue(frame(1000), SimTime::ZERO, &mut actions));
        assert!(n.tx_enqueue(frame(1000), SimTime::ZERO, &mut actions));
        assert_eq!(send_times(&actions).len(), 1);
        actions.clear();
        // Carrier drops: the ring-resident frame is drained and counted.
        n.set_carrier_down();
        assert_eq!(n.link_state(), LinkState::Down);
        assert_eq!(n.stats().tx_carrier_drops.get(), 1);
        // Enqueues while down are accepted-and-dropped, not backpressured.
        assert!(n.tx_enqueue(frame(1000), SimTime::from_micros(1), &mut actions));
        assert_eq!(n.stats().tx_carrier_drops.get(), 2);
        assert!(send_times(&actions).is_empty());
        // RX while down is counted against the carrier-drop book.
        assert_eq!(
            n.rx_frame(frame(100), SimTime::from_micros(1), &mut actions),
            RxOutcome::Dropped
        );
        assert_eq!(n.stats().rx_carrier_drops.get(), 1);
        assert_eq!(n.stats().rx_frames.get(), 0);
        // The in-flight frame's completion timer fires during the outage:
        // nothing further starts, the engine goes idle.
        actions.clear();
        n.on_tx_done(SimTime::from_micros(11), &mut actions);
        assert!(actions.is_empty());
        // Recovery: TX and RX resume.
        n.set_carrier_up();
        assert!(n.tx_enqueue(frame(1000), SimTime::from_micros(50), &mut actions));
        assert_eq!(send_times(&actions).len(), 1);
        assert_eq!(
            n.rx_frame(frame(100), SimTime::from_micros(50), &mut actions),
            RxOutcome::Stored
        );
    }

    #[test]
    fn degraded_uplink_slows_tx_then_recovers() {
        use diablo_net::link::fp20_encode;
        let mut n = nic(NicConfig::default());
        n.degrade_link_fp20(fp20_encode(0.5), 0);
        let mut actions = Vec::new();
        let t0 = SimTime::from_micros(100);
        assert!(n.tx_enqueue(frame(1000), t0, &mut actions));
        // 1066 B wire at the degraded 500 Mbps: 17.056 us, plus 1 us DMA
        // and 500 ns propagation.
        assert_eq!(send_times(&actions), vec![SimTime::from_nanos(100_000 + 1_000 + 17_056 + 500)]);
        // Carrier-up restores the base 1 Gbps.
        n.set_carrier_up();
        let done = actions
            .iter()
            .find_map(|a| match a {
                NicAction::SetTimer(t, k) if *k == keys::TX_DONE => Some(*t),
                _ => None,
            })
            .unwrap();
        actions.clear();
        n.on_tx_done(done, &mut actions);
        assert!(n.tx_enqueue(frame(1000), done, &mut actions));
        assert_eq!(send_times(&actions), vec![done + SimDuration::from_nanos(1_000 + 8_528 + 500)]);
    }

    #[test]
    fn crash_reset_clears_rings_and_interrupt_state() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        for _ in 0..3 {
            n.rx_frame(frame(100), SimTime::ZERO, &mut actions);
        }
        assert!(n.on_rx_interrupt());
        n.tx_enqueue(frame(1000), SimTime::ZERO, &mut actions);
        n.tx_enqueue(frame(1000), SimTime::ZERO, &mut actions);
        n.reset_after_crash();
        assert!(!n.carrier());
        assert_eq!(n.rx_queue_len(), 0);
        assert_eq!(n.tx_free(), n.config().tx_ring);
        // One frame was in flight (not in the ring); only the queued one
        // counts as a carrier drop.
        assert_eq!(n.stats().tx_carrier_drops.get(), 1);
        // rx_frames already counted the stored frames, so conservation
        // (switch tx == rx + ring drops + carrier drops) is unaffected by
        // losing the ring contents.
        assert_eq!(n.stats().rx_frames.get(), 3);
        // After reboot the interrupt path starts fresh.
        n.set_carrier_up();
        actions.clear();
        assert_eq!(
            n.rx_frame(frame(100), SimTime::from_micros(5), &mut actions),
            RxOutcome::Stored
        );
        assert!(actions.iter().any(|a| matches!(a, NicAction::SetTimer(_, keys::RX_INTR))));
    }

    #[test]
    fn rx_ring_drops_when_full() {
        let cfg = NicConfig { rx_ring: 3, ..NicConfig::default() };
        let mut n = nic(cfg);
        let mut actions = Vec::new();
        for _ in 0..3 {
            assert_eq!(n.rx_frame(frame(100), SimTime::ZERO, &mut actions), RxOutcome::Stored);
        }
        assert_eq!(n.rx_frame(frame(100), SimTime::ZERO, &mut actions), RxOutcome::Dropped);
        assert_eq!(n.stats().rx_ring_drops.get(), 1);
        assert_eq!(n.stats().rx_ring_highwater, 3);
    }

    #[test]
    fn interrupts_are_mitigated() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        // First frame: interrupt at t+2us.
        n.rx_frame(frame(100), SimTime::from_micros(0), &mut actions);
        assert_eq!(actions, vec![NicAction::SetTimer(SimTime::from_micros(2), keys::RX_INTR)]);
        assert!(n.on_rx_interrupt()); // live; driver masks
                                      // While masked, arrivals are silent.
        actions.clear();
        n.rx_frame(frame(100), SimTime::from_micros(3), &mut actions);
        assert!(actions.is_empty());
        // Poll everything, unmask at t=4us with empty ring: nothing pending.
        assert_eq!(n.rx_poll(64).len(), 2);
        n.unmask_interrupts(SimTime::from_micros(4), &mut actions);
        assert!(actions.is_empty());
        // Next frame at 5us: mitigation forces the interrupt to 2+10=12us.
        n.rx_frame(frame(100), SimTime::from_micros(5), &mut actions);
        assert_eq!(actions, vec![NicAction::SetTimer(SimTime::from_micros(12), keys::RX_INTR)]);
    }

    #[test]
    fn stale_interrupt_after_drain_is_ignored() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        n.rx_frame(frame(100), SimTime::ZERO, &mut actions);
        // Driver polls before the interrupt fires (e.g. from a TX path).
        assert_eq!(n.rx_poll(64).len(), 1);
        assert!(!n.on_rx_interrupt(), "interrupt on drained ring must be stale");
    }

    #[test]
    fn unmask_with_backlog_rearms() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        n.rx_frame(frame(100), SimTime::ZERO, &mut actions);
        assert!(n.on_rx_interrupt());
        n.rx_frame(frame(100), SimTime::from_micros(1), &mut actions);
        // Poll only one of two; unmask must re-arm.
        assert_eq!(n.rx_poll(1).len(), 1);
        actions.clear();
        n.unmask_interrupts(SimTime::from_micros(5), &mut actions);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], NicAction::SetTimer(_, keys::RX_INTR)));
    }

    #[test]
    fn poll_respects_budget() {
        let mut n = nic(NicConfig::default());
        let mut actions = Vec::new();
        for _ in 0..10 {
            n.rx_frame(frame(100), SimTime::ZERO, &mut actions);
        }
        assert_eq!(n.rx_poll(4).len(), 4);
        assert_eq!(n.rx_queue_len(), 6);
        assert_eq!(n.rx_poll(100).len(), 6);
    }
}
