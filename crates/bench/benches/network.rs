//! Microbenchmarks of the network substrate: switch forwarding rate and
//! TCP engine segment processing.

use criterion::{criterion_group, criterion_main, Criterion};
use diablo_engine::prelude::*;
use diablo_net::addr::NodeAddr;
use diablo_net::frame::{Frame, Route};
use diablo_net::link::{LinkParams, PortPeer};
use diablo_net::payload::{AppMessage, IpPacket, UdpDatagram};
use diablo_net::switch::{BufferConfig, PacketSwitch, SwitchConfig};
use diablo_net::SockAddr;
use diablo_stack::tcp::{TcpConn, TcpOutput, TcpParams};
use std::any::Any;
use std::hint::black_box;

struct Sink;
impl Component<Frame> for Sink {
    fn on_timer(&mut self, _k: TimerKey, _c: &mut Ctx<'_, Frame>) {}
    fn on_message(&mut self, _p: PortNo, _f: Frame, _c: &mut Ctx<'_, Frame>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_switch_forwarding(c: &mut Criterion) {
    c.bench_function("network/switch_forward_10k_frames", |b| {
        b.iter(|| {
            let mut sim = Simulation::<Frame>::new();
            let mut cfg = SwitchConfig::shallow_gbe("t", 4);
            cfg.buffer = BufferConfig::PerPort { bytes_per_port: 1 << 24 };
            let mut sw = PacketSwitch::new(cfg, DetRng::new(1));
            let link = LinkParams::gbe(0);
            sw.connect_port(
                0,
                PortPeer { component: ComponentId(1), port: PortNo(0), params: link },
            );
            sw.connect_port(
                1,
                PortPeer { component: ComponentId(1), port: PortNo(0), params: link },
            );
            let swid = sim.add_component(Box::new(sw));
            sim.add_component(Box::new(Sink));
            let d = UdpDatagram {
                src_port: 1,
                dst_port: 2,
                msg: AppMessage::new(0, 0, 100, SimTime::ZERO),
            };
            let frame = Frame::new(IpPacket::udp(NodeAddr(0), NodeAddr(1), d), Route::new(vec![1]));
            for i in 0..10_000u64 {
                sim.inject_message(SimTime::from_nanos(i * 2_000), swid, PortNo(0), frame.clone());
            }
            sim.run().unwrap();
            black_box(sim.events_processed())
        })
    });
}

fn bench_tcp_transfer(c: &mut Criterion) {
    c.bench_function("network/tcp_1mb_transfer_inmemory", |b| {
        b.iter(|| {
            // Directly pump segments between two engines (no network).
            let params = TcpParams::default();
            let a_addr = SockAddr::new(NodeAddr(0), 1);
            let b_addr = SockAddr::new(NodeAddr(1), 2);
            let mut out = TcpOutput::default();
            let now = SimTime::from_micros(1);
            let mut a = TcpConn::client(params.clone(), a_addr, b_addr, now, &mut out);
            let syn = out.segs.remove(0);
            let mut out_b = TcpOutput::default();
            let mut bc = TcpConn::server_from_syn(params, b_addr, a_addr, &syn, now, &mut out_b);
            // Handshake.
            let mut to_a: Vec<_> = out_b.segs.drain(..).collect();
            let mut to_b: Vec<_> = Vec::new();
            let mut t = now;
            for _ in 0..4 {
                t += SimDuration::from_micros(10);
                let mut oa = TcpOutput::default();
                for s in to_a.drain(..) {
                    a.on_segment(t, s, false, &mut oa);
                }
                to_b.extend(oa.segs);
                let mut ob = TcpOutput::default();
                for s in to_b.drain(..) {
                    bc.on_segment(t, s, false, &mut ob);
                }
                to_a.extend(ob.segs);
            }
            // 1 MB in 16 KB messages.
            let mut sent = 0u32;
            let mut oa = TcpOutput::default();
            while sent < 1_048_576 {
                if a.app_send(AppMessage::new(1, 0, 16_384, t), t, &mut oa).is_err() {
                    // Drain the network.
                    t += SimDuration::from_micros(10);
                    let mut ob = TcpOutput::default();
                    for s in oa.segs.drain(..) {
                        bc.on_segment(t, s, false, &mut ob);
                    }
                    let (_msgs, _) = bc.app_recv(usize::MAX, t, &mut ob);
                    let mut oa2 = TcpOutput::default();
                    for s in ob.segs {
                        a.on_segment(t, s, false, &mut oa2);
                    }
                    oa = oa2;
                    continue;
                }
                sent += 16_384;
            }
            black_box(a.stats().bytes_out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_switch_forwarding, bench_tcp_transfer
}
criterion_main!(benches);
