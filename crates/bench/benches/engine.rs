//! Microbenchmarks of the simulation engine: event dispatch throughput,
//! histogram recording, deterministic RNG. These bound the per-event cost
//! every model pays.

use criterion::{criterion_group, criterion_main, Criterion};
use diablo_engine::prelude::*;
use std::any::Any;
use std::hint::black_box;

/// A component that keeps one self-timer bouncing forever.
struct Bouncer {
    fired: u64,
}

impl Component<()> for Bouncer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.set_timer(SimDuration::from_nanos(10), 0);
    }
    fn on_timer(&mut self, _k: TimerKey, ctx: &mut Ctx<'_, ()>) {
        self.fired += 1;
        ctx.set_timer(SimDuration::from_nanos(10), 0);
    }
    fn on_message(&mut self, _p: PortNo, _m: (), _c: &mut Ctx<'_, ()>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_event_dispatch(c: &mut Criterion) {
    c.bench_function("engine/dispatch_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::<()>::new();
            for _ in 0..16 {
                sim.add_component(Box::new(Bouncer { fired: 0 }));
            }
            // 16 components x 10ns period: 100k events by ~62.5 us.
            sim.run_until(SimTime::from_nanos(62_500)).unwrap();
            black_box(sim.events_processed())
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("engine/histogram_record_10k", |b| {
        let mut h = Histogram::new();
        let mut x: u64 = 12345;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(x >> 32);
            }
            black_box(h.count())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("engine/detrng_next_10k", |b| {
        let mut rng = DetRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_dispatch, bench_histogram, bench_rng
}
criterion_main!(benches);
