//! Microbenchmarks of the simulation engine: event dispatch throughput,
//! histogram recording, deterministic RNG. These bound the per-event cost
//! every model pays.

use criterion::{criterion_group, criterion_main, Criterion};
use diablo_engine::prelude::*;
use std::any::Any;
use std::hint::black_box;

/// A component that keeps one self-timer bouncing forever. Periods are
/// staggered per component (like real NICs/links with distinct rates) so
/// pending events spread over time instead of all landing at one instant.
struct Bouncer {
    period: SimDuration,
    fired: u64,
}

impl Bouncer {
    fn new(index: u64) -> Self {
        Bouncer { period: SimDuration::from_picos(10_000 + 97 * (index % 64)), fired: 0 }
    }
}

impl Component<()> for Bouncer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        ctx.set_timer(self.period, 0);
    }
    fn on_timer(&mut self, _k: TimerKey, ctx: &mut Ctx<'_, ()>) {
        self.fired += 1;
        ctx.set_timer(self.period, 0);
    }
    fn on_message(&mut self, _p: PortNo, _m: (), _c: &mut Ctx<'_, ()>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Drives `components` bouncers until ~100k events have been dispatched,
/// through whichever scheduler `Q` selects.
fn dispatch_100k<Q: EventQueue<()> + Default>(components: usize) -> u64 {
    let mut sim = Simulation::<(), Q>::new();
    for i in 0..components {
        sim.add_component(Box::new(Bouncer::new(i as u64)));
    }
    // `components` timers at ~10ns period: ~100k events by this horizon.
    let horizon = SimTime::from_nanos(10 * 100_000 / components as u64);
    sim.run_until(horizon).unwrap();
    sim.events_processed()
}

fn bench_event_dispatch(c: &mut Criterion) {
    // Paired calendar-vs-heap runs of the identical workload: the ratio is
    // the serial scheduler speedup. 16 components is the shallow-queue
    // case; 4096 components (warehouse-scale models keep thousands of
    // timers pending) is where the heap pays log-depth sifts over an
    // L2-sized array per operation and the calendar queue stays flat.
    let mut g = c.benchmark_group("engine");
    g.bench_function("dispatch_100k_events/calendar", |b| {
        b.iter(|| black_box(dispatch_100k::<CalendarQueue<()>>(16)))
    });
    g.bench_function("dispatch_100k_events/heap", |b| {
        b.iter(|| black_box(dispatch_100k::<HeapQueue<()>>(16)))
    });
    g.bench_function("dispatch_100k_wide/calendar", |b| {
        b.iter(|| black_box(dispatch_100k::<CalendarQueue<()>>(4096)))
    });
    g.bench_function("dispatch_100k_wide/heap", |b| {
        b.iter(|| black_box(dispatch_100k::<HeapQueue<()>>(4096)))
    });
    g.finish();
}

/// Raw scheduler ops with no component dispatch in the way: push/pop 100k
/// timer events with a spread of delivery offsets.
fn queue_churn<Q: EventQueue<()> + Default>() -> usize {
    use diablo_engine::event::{ComponentId, Event, EventKey, EventKind};
    let mut q = Q::default();
    let mut popped = 0usize;
    let mut now = 0u64;
    let mut x: u64 = 0x1234_5678;
    for seq in 0..100_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        // Mostly near-future offsets (up to ~1us), a 1-in-64 tail of 200us
        // far timers that exercise the overflow tier.
        let off = if x >> 58 == 0 { 200_000_000 } else { (x >> 40) & 0xF_FFFF };
        q.push(Event {
            key: EventKey {
                time: diablo_engine::time::SimTime::from_picos(now + off),
                target: ComponentId(0),
                source: ComponentId(0),
                source_seq: seq,
            },
            kind: EventKind::Timer(0),
        });
        if seq % 2 == 1 {
            let e = q.pop().expect("queue non-empty");
            now = e.key.time.as_picos();
            popped += 1;
        }
    }
    while q.pop().is_some() {
        popped += 1;
    }
    popped
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("queue_churn_100k/calendar", |b| {
        b.iter(|| black_box(queue_churn::<CalendarQueue<()>>()))
    });
    g.bench_function("queue_churn_100k/heap", |b| {
        b.iter(|| black_box(queue_churn::<HeapQueue<()>>()))
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("engine/histogram_record_10k", |b| {
        let mut h = Histogram::new();
        let mut x: u64 = 12345;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record(x >> 32);
            }
            black_box(h.count())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("engine/detrng_next_10k", |b| {
        let mut rng = DetRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_dispatch, bench_queue_ops, bench_histogram, bench_rng
}
criterion_main!(benches);
