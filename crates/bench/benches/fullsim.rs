//! Whole-simulator benchmark backing §5's performance discussion: how much
//! wall-clock time a full memcached-at-scale simulation costs, and how it
//! scales with node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diablo_core::{run_memcached, McExperimentConfig};
use diablo_stack::process::Proto;
use std::hint::black_box;

fn bench_full_memcached(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullsim/memcached");
    group.sample_size(10);
    for racks in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("racks", racks), &racks, |b, &racks| {
            b.iter(|| {
                let mut cfg = McExperimentConfig::mini(racks, 20);
                cfg.proto = Proto::Udp;
                let r = run_memcached(&cfg);
                black_box(r.events)
            })
        });
    }
    group.finish();
}

fn bench_full_incast(c: &mut Criterion) {
    let mut group = c.benchmark_group("fullsim/incast");
    group.sample_size(10);
    group.bench_function("8servers_3iters", |b| {
        b.iter(|| {
            let mut cfg = diablo_core::IncastConfig::fig6a(8);
            cfg.iterations = 3;
            let r = diablo_core::run_incast(&cfg);
            black_box(r.events)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_full_memcached, bench_full_incast);
criterion_main!(benches);
