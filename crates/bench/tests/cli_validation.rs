//! End-to-end checks of the `wsc_sim` front end: contradictory flags are
//! rejected with a non-zero exit instead of silently running something
//! else, and `--fault-plan` drives a scripted outage through a real run
//! with serial/parallel metric parity.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn wsc_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wsc_sim"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("repo root")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn parallel_zero_is_rejected() {
    let out = wsc_sim().args(["incast", "--parallel", "0"]).output().expect("spawn wsc_sim");
    assert!(!out.status.success(), "--parallel 0 must exit non-zero");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--parallel"), "stderr: {}", stderr(&out));
}

#[test]
fn zero_valued_size_flags_are_rejected() {
    for (sub, flag) in [
        ("incast", "--servers"),
        ("incast", "--iterations"),
        ("memcached", "--racks"),
        ("partition-aggregate", "--racks"),
        ("partition-aggregate", "--spr"),
        ("partition-aggregate", "--queries"),
        ("partition-aggregate", "--deadline-us"),
        ("partition-aggregate", "--query-bytes"),
        ("partition-aggregate", "--answer-bytes"),
    ] {
        let out = wsc_sim().args([sub, flag, "0"]).output().expect("spawn wsc_sim");
        assert!(!out.status.success(), "{sub} {flag} 0 must exit non-zero");
        assert!(stderr(&out).contains(flag), "stderr: {}", stderr(&out));
    }
}

#[test]
fn missing_fault_plan_is_rejected() {
    let out = wsc_sim()
        .args(["incast", "--fault-plan", "/nonexistent/plan.fplan"])
        .output()
        .expect("spawn wsc_sim");
    assert!(!out.status.success(), "a missing fault plan must exit non-zero");
    assert!(stderr(&out).contains("fault plan"), "stderr: {}", stderr(&out));
}

#[test]
fn malformed_fault_plan_is_rejected() {
    let dir = std::env::temp_dir().join("wsc_sim_cli_validation");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bad = dir.join("bad.fplan");
    std::fs::write(&bad, "10ms frobnicate node1\n").expect("write plan");
    let out = wsc_sim()
        .args(["incast", "--fault-plan", bad.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn wsc_sim");
    assert!(!out.status.success(), "a malformed fault plan must exit non-zero");
    assert!(stderr(&out).contains("frobnicate"), "stderr: {}", stderr(&out));
}

/// The bundled link-flap scenario run end to end through the CLI, serial
/// and 2-partition, with `--check-invariants` — the scripted outage must
/// not unbalance the books, and the two metric scrapes must be
/// byte-identical.
#[test]
fn bundled_link_flap_scenario_runs_identically_serial_and_parallel() {
    let plan = repo_root().join("scenarios/link_flap.fplan");
    assert!(plan.exists(), "bundled scenario missing: {}", plan.display());
    let dir = std::env::temp_dir().join("wsc_sim_cli_flap");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let run = |tag: &str, parallel: Option<&str>| -> PathBuf {
        let json = dir.join(format!("{tag}.json"));
        let mut cmd = wsc_sim();
        cmd.args([
            "incast",
            "--servers",
            "4",
            "--iterations",
            "2",
            "--racks",
            "2",
            "--fault-plan",
            plan.to_str().expect("utf-8 path"),
            "--check-invariants",
            "--metrics",
            json.to_str().expect("utf-8 path"),
        ]);
        if let Some(p) = parallel {
            cmd.args(["--parallel", p]);
        }
        let out = cmd.output().expect("spawn wsc_sim");
        assert!(
            out.status.success(),
            "{tag} run failed (status {:?}): {}",
            out.status.code(),
            stderr(&out)
        );
        json
    };
    let serial = run("serial", None);
    let parallel = run("parallel", Some("2"));
    let a = std::fs::read(serial).expect("serial metrics");
    let b = std::fs::read(parallel).expect("parallel metrics");
    assert_eq!(a, b, "serial and parallel metric scrapes must be byte-identical under faults");
}

/// The partition-aggregate subcommand end to end: accepts a fault plan,
/// passes the conservation audit under `--check-invariants`, and scrapes
/// byte-identical metrics serial vs 2-partition.
#[test]
fn partition_aggregate_runs_identically_serial_and_parallel() {
    let plan = repo_root().join("scenarios/link_flap.fplan");
    assert!(plan.exists(), "bundled scenario missing: {}", plan.display());
    let dir = std::env::temp_dir().join("wsc_sim_cli_pa");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let run = |tag: &str, parallel: Option<&str>| -> PathBuf {
        let json = dir.join(format!("{tag}.json"));
        let mut cmd = wsc_sim();
        cmd.args([
            "partition-aggregate",
            "--racks",
            "2",
            "--queries",
            "30",
            "--fault-plan",
            plan.to_str().expect("utf-8 path"),
            "--check-invariants",
            "--metrics",
            json.to_str().expect("utf-8 path"),
        ]);
        if let Some(p) = parallel {
            cmd.args(["--parallel", p]);
        }
        let out = cmd.output().expect("spawn wsc_sim");
        assert!(
            out.status.success(),
            "{tag} run failed (status {:?}): {}",
            out.status.code(),
            stderr(&out)
        );
        json
    };
    let serial = run("serial", None);
    let parallel = run("parallel", Some("2"));
    let a = std::fs::read(serial).expect("serial metrics");
    let b = std::fs::read(parallel).expect("parallel metrics");
    assert_eq!(a, b, "partition-aggregate serial vs parallel scrapes must be byte-identical");
}

// ---------------------------------------------------------------------------
// Fabric flags: --topology / --cc
// ---------------------------------------------------------------------------

#[test]
fn invalid_topology_values_are_rejected() {
    expect_reject(&["incast", "--topology", "mesh"], "--topology");
    expect_reject(&["incast", "--topology", "fat-tree"], "--topology");
    expect_reject(&["incast", "--topology", "fat-tree:k=3"], "even");
    expect_reject(&["memcached", "--topology", "fat-tree:k=0"], "at least 2");
    expect_reject(&["partition-aggregate", "--topology", "fat-tree:k=4,hosts=0"], "hosts");
    expect_reject(&["incast", "--topology", "fat-tree:k=4,ports=8"], "unknown fat-tree parameter");
    expect_reject(&["incast", "--buffer", "lots"], "--buffer");
}

#[test]
fn invalid_cc_values_are_rejected() {
    expect_reject(&["incast", "--cc", "cubic"], "--cc");
    expect_reject(&["memcached", "--cc", "bbr"], "--cc");
    expect_reject(&["partition-aggregate", "--cc", "tahoe"], "--cc");
}

#[test]
fn fat_tree_conflicts_with_explicit_shape_flags() {
    // The Clos shape is k-derived; an explicit rack count would be
    // silently ignored, so it must be an error instead.
    expect_reject(&["incast", "--topology", "fat-tree:k=4", "--racks", "2"], "--racks");
    expect_reject(&["memcached", "--topology", "fat-tree:k=4", "--spr", "3"], "--spr");
    expect_reject(
        &["partition-aggregate", "--topology", "fat-tree:k=4", "--racks", "2"],
        "--racks",
    );
}

// ---------------------------------------------------------------------------
// Open-loop flags: --arrival / --slo
// ---------------------------------------------------------------------------

fn write_arrival(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wsc_sim_cli_arrival");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    std::fs::write(&path, body).expect("write arrival spec");
    path
}

fn expect_reject(args: &[&str], needle: &str) {
    let out = wsc_sim().args(args).output().expect("spawn wsc_sim");
    assert!(!out.status.success(), "{args:?} must exit non-zero");
    assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2: {}", stderr(&out));
    assert!(
        stderr(&out).contains(needle),
        "{args:?}: stderr must mention {needle:?}, got: {}",
        stderr(&out)
    );
}

#[test]
fn arrival_spec_with_zero_rate_is_rejected() {
    let p = write_arrival("zero_rate.arrv", "10ms poisson 0\n");
    expect_reject(&["memcached", "--arrival", p.to_str().expect("utf-8")], "rate must be positive");
}

#[test]
fn arrival_spec_with_negative_rate_is_rejected() {
    let p = write_arrival("neg_rate.arrv", "10ms const -250\n");
    expect_reject(&["memcached", "--arrival", p.to_str().expect("utf-8")], "rate must be positive");
}

#[test]
fn arrival_spec_with_unknown_profile_keyword_is_rejected() {
    // The bad line sits after a good one: the error must carry the
    // offending 1-based line number.
    let p = write_arrival("bad_kind.arrv", "10ms poisson 500\n10ms lognormal 500\n");
    expect_reject(
        &["memcached", "--arrival", p.to_str().expect("utf-8")],
        "unknown arrival profile",
    );
    let out = wsc_sim()
        .args(["memcached", "--arrival", p.to_str().expect("utf-8")])
        .output()
        .expect("spawn wsc_sim");
    assert!(stderr(&out).contains("line 2"), "stderr must carry the line: {}", stderr(&out));
}

#[test]
fn missing_arrival_spec_is_rejected() {
    expect_reject(
        &["memcached", "--arrival", "/nonexistent/profile.arrv"],
        "cannot read arrival spec",
    );
}

#[test]
fn zero_slo_is_rejected() {
    let p = write_arrival("ok.arrv", "10ms const 500\n");
    expect_reject(
        &["memcached", "--arrival", p.to_str().expect("utf-8"), "--slo", "0"],
        "--slo must be at least 1 nanosecond",
    );
}

#[test]
fn open_loop_memcached_requires_udp() {
    let p = write_arrival("ok_udp.arrv", "10ms const 500\n");
    expect_reject(
        &["memcached", "--proto", "tcp", "--arrival", p.to_str().expect("utf-8")],
        "--arrival requires --proto udp",
    );
}

#[test]
fn open_loop_incast_requires_epoll_client() {
    let p = write_arrival("ok_epoll.arrv", "10ms const 500\n");
    expect_reject(
        &["incast", "--client", "pthread", "--arrival", p.to_str().expect("utf-8")],
        "--arrival requires --client epoll",
    );
}

/// The bundled diurnal scenario through the CLI: serial and 4-partition
/// runs of the open-loop memcached workload must scrape byte-identical
/// metrics — the CLI half of the open-loop conformance contract.
#[test]
fn bundled_diurnal_scenario_runs_identically_serial_and_parallel() {
    let spec = repo_root().join("scenarios/diurnal.arrv");
    assert!(spec.exists(), "bundled scenario missing: {}", spec.display());
    let dir = std::env::temp_dir().join("wsc_sim_cli_diurnal");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let run = |tag: &str, parallel: Option<&str>| -> PathBuf {
        let json = dir.join(format!("{tag}.json"));
        let mut cmd = wsc_sim();
        cmd.args([
            "memcached",
            "--racks",
            "1",
            "--arrival",
            spec.to_str().expect("utf-8 path"),
            "--slo",
            "500000",
            "--check-invariants",
            "--metrics",
            json.to_str().expect("utf-8 path"),
        ]);
        if let Some(p) = parallel {
            cmd.args(["--parallel", p]);
        }
        let out = cmd.output().expect("spawn wsc_sim");
        assert!(
            out.status.success(),
            "{tag} run failed (status {:?}): {}",
            out.status.code(),
            stderr(&out)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains("open loop:"), "run must report SLO accounting: {stdout}");
        json
    };
    let serial = run("serial", None);
    let parallel = run("parallel", Some("4"));
    let a = std::fs::read(serial).expect("serial metrics");
    let b = std::fs::read(parallel).expect("parallel metrics");
    assert_eq!(a, b, "serial and 4-partition open-loop scrapes must be byte-identical");
}

// ---------------------------------------------------------------------------
// Control-plane flags: --control-plane and its tuning family
// ---------------------------------------------------------------------------

#[test]
fn control_tuning_flags_require_control_plane() {
    for flags in [
        &["memcached", "--spares", "2"][..],
        &["memcached", "--heartbeat-us", "1000"][..],
        &["incast", "--suspect-us", "4000"][..],
        &["incast", "--dead-us", "9000"][..],
        &["partition-aggregate", "--scale-up", "0.5"][..],
        &["partition-aggregate", "--scale-down", "0.01"][..],
        &["memcached", "--autoscale"][..],
    ] {
        expect_reject(flags, "requires --control-plane");
    }
}

#[test]
fn contradictory_control_thresholds_are_rejected() {
    let p = write_arrival("ctl_ok.arrv", "10ms const 500\n");
    let arrv = p.to_str().expect("utf-8");
    // Suspect threshold at/below the heartbeat period: one in-flight
    // heartbeat would permanently flap every node.
    expect_reject(
        &[
            "memcached",
            "--arrival",
            arrv,
            "--control-plane",
            "--heartbeat-us",
            "2000",
            "--suspect-us",
            "2000",
        ],
        "suspect threshold",
    );
    // Dead threshold not beyond suspect.
    expect_reject(
        &[
            "memcached",
            "--arrival",
            arrv,
            "--control-plane",
            "--suspect-us",
            "5000",
            "--dead-us",
            "5000",
        ],
        "dead threshold",
    );
    // Inverted autoscale hysteresis: scale-down at/above scale-up flaps.
    expect_reject(
        &[
            "memcached",
            "--arrival",
            arrv,
            "--control-plane",
            "--scale-up",
            "0.1",
            "--scale-down",
            "0.2",
        ],
        "hysteresis",
    );
    // Fractions outside [0, 1].
    expect_reject(
        &["memcached", "--arrival", arrv, "--control-plane", "--scale-up", "1.5"],
        "scaling thresholds",
    );
}

#[test]
fn controlled_memcached_requires_open_loop_and_room_for_clients() {
    // Closed-loop memcached has no registry-driven client.
    expect_reject(&["memcached", "--control-plane"], "requires --arrival");
    // Serving replicas + spares must leave client slots in each rack.
    let p = write_arrival("ctl_full.arrv", "10ms const 500\n");
    expect_reject(
        &[
            "memcached",
            "--arrival",
            p.to_str().expect("utf-8"),
            "--control-plane",
            "--spr",
            "3",
            "--mc-per-rack",
            "2",
            "--spares",
            "1",
        ],
        "leaves no client slots",
    );
}

#[test]
fn controlled_partition_aggregate_requires_cross_rack() {
    expect_reject(&["partition-aggregate", "--control-plane"], "requires --cross-rack");
}

/// The churn headline through the CLI: the bundled rolling-crash wave
/// over the bundled diurnal trace with the control plane on, serial and
/// 2-partition — failovers must be reported, books must balance, and the
/// two scrapes must be byte-identical.
#[test]
fn bundled_rolling_crash_with_control_plane_runs_identically_serial_and_parallel() {
    let plan = repo_root().join("scenarios/rolling_crash.fplan");
    let spec = repo_root().join("scenarios/diurnal.arrv");
    assert!(plan.exists(), "bundled scenario missing: {}", plan.display());
    assert!(spec.exists(), "bundled scenario missing: {}", spec.display());
    let dir = std::env::temp_dir().join("wsc_sim_cli_churn");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let run = |tag: &str, parallel: Option<&str>| -> PathBuf {
        let json = dir.join(format!("{tag}.json"));
        let mut cmd = wsc_sim();
        cmd.args([
            "memcached",
            "--racks",
            "2",
            "--control-plane",
            "--arrival",
            spec.to_str().expect("utf-8 path"),
            "--slo",
            "1000000",
            "--fault-plan",
            plan.to_str().expect("utf-8 path"),
            "--check-invariants",
            "--metrics",
            json.to_str().expect("utf-8 path"),
        ]);
        if let Some(p) = parallel {
            cmd.args(["--parallel", p]);
        }
        let out = cmd.output().expect("spawn wsc_sim");
        assert!(
            out.status.success(),
            "{tag} run failed (status {:?}): {}",
            out.status.code(),
            stderr(&out)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(stdout.contains("control plane:"), "run must report the scheduler: {stdout}");
        assert!(stdout.contains("failovers="), "run must report failovers: {stdout}");
        json
    };
    let serial = run("serial", None);
    let parallel = run("parallel", Some("2"));
    let a = std::fs::read(serial).expect("serial metrics");
    let b = std::fs::read(parallel).expect("parallel metrics");
    assert_eq!(a, b, "controlled churn scrapes must be byte-identical serial vs parallel");
}

// ---------------------------------------------------------------------------
// Checkpoint/restore flags: --checkpoint / --checkpoint-at / --restore
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_requires_both_path_and_instant() {
    expect_reject(&["memcached", "--checkpoint", "/tmp/x.snap"], "--checkpoint-at");
    expect_reject(&["memcached", "--checkpoint-at", "1ms"], "--checkpoint <path>");
    expect_reject(&["incast", "--checkpoint", "/tmp/x.snap"], "--checkpoint-at");
    expect_reject(&["partition-aggregate", "--checkpoint-at", "1ms"], "--checkpoint <path>");
}

#[test]
fn checkpoint_instant_requires_a_unit_suffix() {
    // A bare number is ambiguous (ns? ms?) — the duration grammar
    // demands a suffix.
    expect_reject(&["memcached", "--checkpoint", "/tmp/x.snap", "--checkpoint-at", "5"], "suffix");
    expect_reject(
        &["memcached", "--checkpoint", "/tmp/x.snap", "--checkpoint-at", "fast"],
        "--checkpoint-at",
    );
}

#[test]
fn missing_restore_snapshot_is_rejected() {
    expect_reject(&["memcached", "--restore", "/nonexistent/warm.snap"], "cannot read snapshot");
}

#[test]
fn checkpoint_and_restore_must_not_share_a_path() {
    let dir = std::env::temp_dir().join("wsc_sim_cli_ckpt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let p = dir.join("shared.snap");
    std::fs::write(&p, b"placeholder").expect("write placeholder");
    let p = p.to_str().expect("utf-8");
    expect_reject(
        &["memcached", "--checkpoint", p, "--checkpoint-at", "1ms", "--restore", p],
        "share a path",
    );
}

#[test]
fn restoring_a_corrupt_snapshot_fails_loudly() {
    let dir = std::env::temp_dir().join("wsc_sim_cli_ckpt_corrupt");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let p = dir.join("garbage.snap");
    std::fs::write(&p, b"this is not a snapshot").expect("write garbage");
    let out = wsc_sim()
        .args(["memcached", "--racks", "1", "--restore", p.to_str().expect("utf-8")])
        .output()
        .expect("spawn wsc_sim");
    assert!(!out.status.success(), "a corrupt snapshot must exit non-zero");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("snapshot"), "stderr: {}", stderr(&out));
}

#[test]
fn restoring_into_a_different_shape_is_rejected() {
    // Warm a 1-rack memcached run, then try to restore it into a 2-rack
    // cluster: the structural fingerprint must refuse.
    let dir = std::env::temp_dir().join("wsc_sim_cli_ckpt_shape");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap = dir.join("one_rack.snap");
    let out = wsc_sim()
        .args([
            "memcached",
            "--racks",
            "1",
            "--requests",
            "20",
            "--checkpoint",
            snap.to_str().expect("utf-8"),
            "--checkpoint-at",
            "200us",
            "--metrics",
            dir.join("warm.json").to_str().expect("utf-8"),
        ])
        .output()
        .expect("spawn wsc_sim");
    assert!(out.status.success(), "warm run failed: {}", stderr(&out));
    let out = wsc_sim()
        .args([
            "memcached",
            "--racks",
            "2",
            "--requests",
            "20",
            "--restore",
            snap.to_str().unwrap(),
        ])
        .output()
        .expect("spawn wsc_sim");
    assert!(!out.status.success(), "a shape-mismatched restore must exit non-zero");
    assert!(stderr(&out).contains("fingerprint"), "stderr: {}", stderr(&out));
}

// ---------------------------------------------------------------------------
// Sweep flags: --spec and the grid grammar
// ---------------------------------------------------------------------------

#[test]
fn sweep_requires_a_spec() {
    expect_reject(&["sweep"], "--spec");
    expect_reject(&["sweep", "--spec", "/nonexistent/grid.sweep"], "cannot read sweep spec");
}

fn write_sweep(name: &str, body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("wsc_sim_cli_sweep");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(name);
    std::fs::write(&path, body).expect("write sweep spec");
    path
}

#[test]
fn malformed_sweep_specs_are_rejected() {
    let p = write_sweep("bad_directive.sweep", "scenario memcached\nfrobnicate 3\n");
    expect_reject(&["sweep", "--spec", p.to_str().expect("utf-8")], "frobnicate");

    let p = write_sweep("no_scenario.sweep", "axis --requests = 10, 20\n");
    expect_reject(&["sweep", "--spec", p.to_str().expect("utf-8")], "scenario");

    let p = write_sweep("bogus_scenario.sweep", "scenario tensorflow\naxis --requests = 10\n");
    expect_reject(&["sweep", "--spec", p.to_str().expect("utf-8")], "unknown sweep scenario");
}
