//! Figure 2: size of physical testbeds used in SIGCOMM datacenter papers,
//! 2008–2013 (reconstructed dataset; the paper's summary statistics —
//! median 16 servers, 6 switches — are preserved exactly).

use diablo_bench::{banner, results_dir};
use diablo_core::report::Table;
use diablo_core::survey::{median_servers, median_switches, sigcomm_survey};

fn main() {
    banner("Figure 2", "Size of physical testbeds in recent SIGCOMM papers");
    let entries = sigcomm_survey();
    let mut t = Table::new(vec!["year", "servers", "switches", "workload"]);
    for e in &entries {
        t.row(vec![
            e.year.to_string(),
            e.servers.to_string(),
            e.switches.to_string(),
            e.workload.to_string(),
        ]);
    }
    print!("{t}");
    println!(
        "\nmedian servers = {} (paper: 16), median switches = {} (paper: 6)",
        median_servers(&entries),
        median_switches(&entries)
    );
    let path = results_dir().join("fig02_testbeds.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
