//! Figure 9: client request latency CDF at ~120 nodes, memcached 1.4.15 vs
//! 1.4.17 (the validation-cluster comparison).
//!
//! Paper shape to reproduce: <0.1% of requests land orders of magnitude
//! past the median, and 1.4.17 has a slightly thinner tail than 1.4.15.

use diablo_apps::memcached::McVersion;
use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{percentiles_us, tail_cdf_us, Table};
use diablo_core::{run_memcached, McExperimentConfig};
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 9", "Latency CDF at ~120 nodes: memcached 1.4.15 vs 1.4.17");
    // 8 racks x 15 nodes = 120 nodes, like the paper's validation cluster.
    let requests: u64 = args.get("--requests", 150);
    let racks: usize = args.get("--racks", 8);
    let spr: usize = args.get("--spr", 15);

    let mut t = Table::new(vec!["version", "p50_us", "p99_us", "p99.9_us", "max_us"]);
    let mut cdf_rows = Table::new(vec!["version", "latency_us", "cum_frac"]);
    for version in [McVersion::V1_4_15, McVersion::V1_4_17] {
        let mut cfg = McExperimentConfig::mini(racks, requests);
        cfg.servers_per_rack = spr;
        cfg.mc_per_rack = 2;
        cfg.version = version;
        cfg.proto = Proto::Tcp;
        let r = run_memcached(&cfg);
        let p = percentiles_us(&r.latency);
        let get = |n: &str| p.iter().find(|(k, _)| *k == n).map(|(_, v)| *v).unwrap_or(0.0);
        t.row(vec![
            version.as_str().into(),
            format!("{:.1}", get("p50")),
            format!("{:.1}", get("p99")),
            format!("{:.1}", get("p99.9")),
            format!("{:.1}", get("max")),
        ]);
        println!(
            "memcached {}: p50={:.1}us p99={:.1}us p99.9={:.1}us max={:.1}us ({} requests)",
            version.as_str(),
            get("p50"),
            get("p99"),
            get("p99.9"),
            get("max"),
            r.latency.count()
        );
        for (us, q) in tail_cdf_us(&r.latency, 0.98) {
            cdf_rows.row(vec![version.as_str().into(), format!("{us:.1}"), format!("{q:.5}")]);
        }
    }
    println!();
    print!("{t}");
    println!("\npaper shape: long tail visible; 1.4.17 slightly better than 1.4.15");
    let path = results_dir().join("fig09_version_cdf_120.csv");
    cdf_rows.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
