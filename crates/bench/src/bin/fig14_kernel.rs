//! Figure 14: impact of the guest kernel version (Linux 2.6.39.3 vs
//! 3.5.7) on client latency at scale (10 Gbps interconnect).
//!
//! Paper shape to reproduce: the newer kernel roughly halves average
//! request latency and thins the tail.

use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::{tail_cdf_us, Table};
use diablo_core::run_memcached;
use diablo_stack::process::Proto;
use diablo_stack::profile::KernelProfile;

fn main() {
    let args = Args::parse();
    banner("Figure 14", "Kernel version impact at scale (10 Gbps)");
    let mut base = mc_config_from_args(&args, 32, 120);
    base.proto = Proto::Udp;
    base.ten_gig = true;

    let mut csv = Table::new(vec!["kernel", "latency_us", "cum_frac"]);
    let mut summary = Table::new(vec!["kernel", "p50_us", "mean_us", "p95_us", "p99_us"]);
    let mut medians = Vec::new();
    for kernel in [KernelProfile::linux_2_6_39(), KernelProfile::linux_3_5_7()] {
        let name = kernel.name;
        let mut cfg = base.clone();
        cfg.kernel = kernel;
        let r = run_memcached(&cfg);
        let mean_us = r.latency.mean() / 1e3;
        let p50_us = r.latency.quantile(0.5) as f64 / 1e3;
        medians.push(p50_us);
        summary.row(vec![
            name.into(),
            format!("{p50_us:.1}"),
            format!("{mean_us:.1}"),
            format!("{:.1}", r.latency.quantile(0.95) as f64 / 1e3),
            format!("{:.1}", r.latency.quantile(0.99) as f64 / 1e3),
        ]);
        println!(
            "{name:>15}: p50={p50_us:>7.1}us mean={mean_us:>8.1}us p95={:>8.1}us p99={:>9.1}us",
            r.latency.quantile(0.95) as f64 / 1e3,
            r.latency.quantile(0.99) as f64 / 1e3
        );
        for (us, q) in tail_cdf_us(&r.latency, 0.95) {
            csv.row(vec![name.into(), format!("{us:.1}"), format!("{q:.5}")]);
        }
    }
    println!();
    print!("{summary}");
    println!(
        "\nmeasured median ratio old/new = {:.2} (paper: ~2x average improvement on 3.5.7; \
         here the far tail is retry-dominated and identical, so the median carries the effect)",
        medians[0] / medians[1]
    );
    let path = results_dir().join("fig14_kernel.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
