//! Figure 12: client latency tail with +0/+50/+100 ns of extra
//! port-to-port latency at every switch level (10 Gbps fabric).
//!
//! Paper shape to reproduce: the extra latency does not change the shape
//! of the tail, shifts the 99th percentile moderately, and barely taxes
//! non-tail requests.

use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::{tail_cdf_us, Table};
use diablo_core::run_memcached;
use diablo_engine::time::SimDuration;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 12", "Latency tail vs extra switch latency (+0/+50/+100 ns)");
    let mut base = mc_config_from_args(&args, 32, 400);
    base.proto = Proto::Udp;
    base.ten_gig = true;

    let mut csv = Table::new(vec!["extra_ns", "latency_us", "cum_frac"]);
    let mut summary = Table::new(vec!["extra_ns", "p50_us", "p99_us", "p99.9_us"]);
    for extra_ns in [0u64, 50, 100] {
        let mut cfg = base.clone();
        cfg.extra_switch_latency = SimDuration::from_nanos(extra_ns);
        let r = run_memcached(&cfg);
        summary.row(vec![
            extra_ns.to_string(),
            format!("{:.1}", r.latency.quantile(0.50) as f64 / 1e3),
            format!("{:.1}", r.latency.quantile(0.99) as f64 / 1e3),
            format!("{:.1}", r.latency.quantile(0.999) as f64 / 1e3),
        ]);
        println!(
            "+{extra_ns:>3}ns: p50={:>8.1}us p99={:>9.1}us p99.9={:>10.1}us",
            r.latency.quantile(0.50) as f64 / 1e3,
            r.latency.quantile(0.99) as f64 / 1e3,
            r.latency.quantile(0.999) as f64 / 1e3
        );
        for (us, q) in tail_cdf_us(&r.latency, 0.96) {
            csv.row(vec![extra_ns.to_string(), format!("{us:.1}"), format!("{q:.5}")]);
        }
    }
    println!();
    print!("{summary}");
    println!("\npaper shape: tail shape unchanged; p99 rises moderately; non-tail untaxed");
    let path = results_dir().join("fig12_switch_latency.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
