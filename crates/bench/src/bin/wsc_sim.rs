//! `wsc_sim` — the general-purpose simulator front end: run either paper
//! workload on an arbitrary configuration from the command line.
//!
//! ```console
//! $ wsc_sim memcached --racks 32 --requests 200 --proto tcp --kernel 3.5 --10g
//! $ wsc_sim incast --servers 12 --iterations 10 --client epoll --ghz 2 --10g
//! $ wsc_sim partition-aggregate --racks 4 --queries 200 --deadline-us 800
//! $ wsc_sim memcached --parallel 4        # partition-parallel, identical results
//! $ wsc_sim memcached --checkpoint warm.snap --checkpoint-at 2ms
//! $ wsc_sim memcached --restore warm.snap # resume bit-identically
//! $ wsc_sim sweep --spec grid.sweep       # parallel grid, one merged table
//! ```

use diablo_apps::memcached::McVersion;
use diablo_bench::{banner, cc, fabric, parallel_mode, results_dir, write_metrics_artifacts, Args};
use diablo_core::report::percentiles_us;
use diablo_core::sweep::parse_duration;
use diablo_core::{
    try_run_incast_with, try_run_memcached_with, try_run_partition_aggregate_with, warm_incast,
    warm_memcached, warm_partition_aggregate, ArrivalSpec, CheckpointPolicy, ControlConfig,
    ControlReport, DropAccounting, ExperimentError, FabricKind, FaultPlan, IncastClientKind,
    IncastConfig, McExperimentConfig, PaExperimentConfig, SloStats, SweepEngine, SweepError,
    SweepPoint, SweepRunner, SweepSpec, SwitchTemplate,
};
use diablo_engine::prelude::{ExecReport, Histogram, MetricsRegistry, SimDuration, SimTime};
use diablo_engine::time::Frequency;
use diablo_stack::process::Proto;
use diablo_stack::profile::KernelProfile;
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: wsc_sim <memcached|incast|partition-aggregate|sweep> [options]\n\
         \n\
         memcached options:\n\
           --racks N (16)  --spr N (6)  --mc-per-rack N (1)  --requests N (150)\n\
           --proto tcp|udp (udp)  --kernel 2.6|3.5 (2.6)  --version 1.4.15|1.4.17\n\
           --workers N (4)  --10g  --parallel N  --seed N\n\
         \n\
         incast options:\n\
           --servers N (8)  --iterations N (10)  --block BYTES (262144)\n\
           --client pthread|epoll (pthread)  --ghz 2|4 (4)  --10g  --racks N (1)\n\
           --buffer BYTES      per-port switch buffer override (every tier\n\
                               on a fat-tree, ToR only on the tree)\n\
           --parallel N  --seed N\n\
         \n\
         partition-aggregate options:\n\
           --racks N (4)  --spr N (6)  --queries N (100)  --deadline-us N (1000)\n\
           --query-bytes N (64)  --answer-bytes N (2048)  --cross-rack  --10g\n\
           --parallel N  --seed N\n\
         \n\
         sweep options:\n\
           --spec PATH         sweep grid spec: scenario/warm/jobs/set/axis\n\
                               directives (see DESIGN.md §15); the cartesian\n\
                               product of the axes fans out over worker\n\
                               threads, optionally seeded from one shared\n\
                               warmed checkpoint, into a single merged table\n\
           --jobs N            worker threads (overrides the spec's jobs)\n\
           --out PATH          merged results table (default under results/)\n\
           --progress PATH     resumable progress ledger (default results/;\n\
                               delete it to re-run from scratch)\n\
           --warm-checkpoint PATH  shared warm snapshot location (default\n\
                               results/, keyed by the spec digest)\n\
         \n\
         fabric (all workloads):\n\
           --topology tree|fat-tree:k=K[,hosts=N]  (tree)\n\
                               fat-tree is a 3-tier folded Clos with K pods\n\
                               and flow-consistent ECMP; its shape replaces\n\
                               --racks/--spr\n\
           --cc reno|dctcp (reno)  congestion control; dctcp enables ECN\n\
                               marking at the switches\n\
         \n\
         observability (all workloads):\n\
           --metrics PATH      write the metrics JSON here instead of results/\n\
           --check-invariants  exit 1 if frame conservation does not balance\n\
         \n\
         checkpoint/restore (all workloads):\n\
           --checkpoint PATH   snapshot the full simulation state to PATH\n\
                               mid-run (requires --checkpoint-at)\n\
           --checkpoint-at DUR simulated instant to snapshot at, with a\n\
                               ns/us/ms/s suffix (e.g. 2ms)\n\
           --restore PATH      seed the run from a snapshot instead of time\n\
                               zero; the restored run finishes bit-identical\n\
                               to an uninterrupted one\n\
         \n\
         fault injection (all workloads):\n\
           --fault-plan PATH   scripted fault schedule (link flaps, switch and\n\
                               node failures); see DESIGN.md for the grammar\n\
           --deadline MS       per-request TCP deadline in milliseconds\n\
         \n\
         open-loop load (all workloads):\n\
           --arrival PATH      rate-driven admission profile (one\n\
                               '<duration> <const|poisson> <rate>' phase per\n\
                               line); memcached requires --proto udp, incast\n\
                               requires --client epoll\n\
           --slo NS            per-request SLO target in nanoseconds\n\
           --window N          memcached in-flight window per client (64)\n\
         \n\
         cluster control plane (all workloads):\n\
           --control-plane     run a scheduler process inside the simulation:\n\
                               per-node heartbeat health checking, failover\n\
                               placement onto spares, registry-based endpoint\n\
                               discovery (memcached needs --arrival; the\n\
                               search tier needs --cross-rack; incast gets\n\
                               monitoring only)\n\
           --spares N          standby replicas per rack (1, memcached only)\n\
           --heartbeat-us N    agent heartbeat period (2000)\n\
           --suspect-us N      silence before a node is suspect (5000)\n\
           --dead-us N         silence before a node is dead (11000)\n\
           --scale-up F        p99-violation fraction that adds a replica (0.25)\n\
           --scale-down F      violation fraction that removes one (0.05)\n\
           --autoscale         scale replicas against the SLO signal"
    );
    std::process::exit(2);
}

/// Rejects contradictory zero values for flags that must be at least 1.
fn positive<T: Default + PartialEq + std::fmt::Display>(name: &str, v: T) -> T {
    if v == T::default() {
        eprintln!("error: {name} must be at least 1 (got {v})");
        std::process::exit(2);
    }
    v
}

/// Parses `--topology`, rejecting shape flags that a fat-tree derives
/// itself: under `fat-tree:k=K` the rack count and servers-per-rack come
/// from the Clos arithmetic, so an explicit `--racks`/`--spr` would be
/// silently ignored — an error instead.
fn fabric_for(args: &Args, shape_flags: &[&str]) -> FabricKind {
    let f = fabric(args);
    if matches!(f, FabricKind::FatTree(_)) {
        for flag in shape_flags {
            if args.flag(flag) {
                eprintln!(
                    "error: {flag} conflicts with --topology fat-tree \
                     (the Clos shape is derived from k and hosts)"
                );
                std::process::exit(2);
            }
        }
    }
    f
}

/// Human-readable fabric description for the run banner.
fn fabric_desc(f: &FabricKind) -> String {
    match f {
        FabricKind::Tree => "tree".to_string(),
        FabricKind::FatTree(ft) => {
            format!("fat-tree(k={}, hosts/edge={})", ft.k, ft.hosts_per_edge)
        }
    }
}

/// Short fabric token for namespacing `results/` artifacts
/// (`memcached_fattree_metrics.json` and friends).
fn fabric_short(f: &FabricKind) -> &'static str {
    match f {
        FabricKind::Tree => "tree",
        FabricKind::FatTree(_) => "fattree",
    }
}

/// Loads and parses `--fault-plan`, exiting non-zero on a missing file or
/// a malformed schedule. `verbose` gates the loader chatter so parallel
/// sweep workers stay quiet.
fn fault_plan(args: &Args, verbose: bool) -> Option<FaultPlan> {
    let path = args.get("--fault-plan", String::new());
    if path.is_empty() {
        return None;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read fault plan {path}: {e}");
        std::process::exit(2);
    });
    let plan = FaultPlan::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    if verbose {
        println!(
            "fault plan: {} events from {path} (horizon {})",
            plan.events.len(),
            plan.horizon()
        );
    }
    Some(plan)
}

/// Loads and parses `--arrival`, exiting non-zero on a missing file or a
/// malformed profile.
fn arrival_spec(args: &Args, verbose: bool) -> Option<ArrivalSpec> {
    let path = args.get("--arrival", String::new());
    if path.is_empty() {
        return None;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot read arrival spec {path}: {e}");
        std::process::exit(2);
    });
    let spec = ArrivalSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    if verbose {
        println!(
            "arrival profile: {} phases from {path} (horizon {}, ~{:.0} arrivals per client)",
            spec.phases().len(),
            spec.horizon(),
            spec.expected_arrivals()
        );
    }
    Some(spec)
}

/// Parses `--slo NS` into an SLO target. An explicit `--slo 0` is
/// contradictory — a zero-nanosecond target is violated by construction —
/// and is an error rather than a silent "no target".
fn slo_target(args: &Args) -> Option<SimDuration> {
    if !args.flag("--slo") {
        return None;
    }
    let ns: u64 = args.get("--slo", 0);
    if ns == 0 {
        eprintln!("error: --slo must be at least 1 nanosecond (got 0)");
        std::process::exit(2);
    }
    Some(SimDuration::from_nanos(ns))
}

/// Parses the `--control-plane` flag family into a scheduler config.
///
/// Exits non-zero on contradictions: a tuning flag without
/// `--control-plane` itself, or thresholds [`ControlConfig::validate`]
/// rejects (zero periods, suspect/dead out of order, inverted scaling
/// hysteresis).
fn control_config(args: &Args) -> Option<ControlConfig> {
    const TUNING: [&str; 7] = [
        "--spares",
        "--heartbeat-us",
        "--suspect-us",
        "--dead-us",
        "--scale-up",
        "--scale-down",
        "--autoscale",
    ];
    if !args.flag("--control-plane") {
        for f in TUNING {
            if args.flag(f) {
                eprintln!("error: {f} requires --control-plane");
                std::process::exit(2);
            }
        }
        return None;
    }
    let d = ControlConfig::default();
    let mut ctl = ControlConfig {
        spares_per_rack: args.get("--spares", d.spares_per_rack),
        scale_up_frac: args.get("--scale-up", d.scale_up_frac),
        scale_down_frac: args.get("--scale-down", d.scale_down_frac),
        autoscale: args.flag("--autoscale"),
        ..d
    };
    if args.flag("--heartbeat-us") {
        ctl.heartbeat_every = SimDuration::from_micros(args.get("--heartbeat-us", 0));
    }
    if args.flag("--suspect-us") {
        ctl.suspect_after = SimDuration::from_micros(args.get("--suspect-us", 0));
    }
    if args.flag("--dead-us") {
        ctl.dead_after = SimDuration::from_micros(args.get("--dead-us", 0));
    }
    if let Err(e) = ctl.validate() {
        eprintln!("error: --control-plane: {e}");
        std::process::exit(2);
    }
    Some(ctl)
}

/// Parses the `--checkpoint`/`--checkpoint-at`/`--restore` flag family.
///
/// Exits 2 on contradictions: a snapshot path without an instant (or the
/// reverse), a malformed duration token, a restore file that does not
/// exist, or a checkpoint that would clobber the snapshot it restores
/// from.
fn checkpoint_policy(args: &Args) -> CheckpointPolicy {
    let save_path = args.get("--checkpoint", String::new());
    let has_at = args.flag("--checkpoint-at");
    if save_path.is_empty() && has_at {
        eprintln!("error: --checkpoint-at requires --checkpoint <path>");
        std::process::exit(2);
    }
    if !save_path.is_empty() && !has_at {
        eprintln!("error: --checkpoint requires --checkpoint-at <duration>");
        std::process::exit(2);
    }
    let save = (!save_path.is_empty()).then(|| {
        let tok: String = args.get("--checkpoint-at", String::new());
        let at = parse_duration(&tok).unwrap_or_else(|e| {
            eprintln!("error: --checkpoint-at: {e}");
            std::process::exit(2);
        });
        (PathBuf::from(&save_path), SimTime::ZERO + at)
    });
    let restore_path = args.get("--restore", String::new());
    let restore_from = (!restore_path.is_empty()).then(|| {
        let p = PathBuf::from(&restore_path);
        if !p.is_file() {
            eprintln!("error: --restore: cannot read snapshot {restore_path}: no such file");
            std::process::exit(2);
        }
        p
    });
    if let (Some((s, _)), Some(r)) = (&save, &restore_from) {
        if s == r {
            eprintln!("error: --checkpoint and --restore must not share a path");
            std::process::exit(2);
        }
    }
    CheckpointPolicy { save, restore_from }
}

/// Announces what the checkpoint policy will do to this run.
fn print_checkpoint(ckpt: &CheckpointPolicy) {
    if let Some(p) = &ckpt.restore_from {
        println!("restore: seeding simulation state from {}", p.display());
    }
    if let Some((p, at)) = &ckpt.save {
        println!("checkpoint: will snapshot to {} at {at}", p.display());
    }
}

/// Unwraps an experiment result, turning structured failures (snapshot
/// validation, unreachable checkpoint instants) into `exit 1`.
fn run_or_die<T>(r: Result<T, ExperimentError>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let args = Args::parse();
    match mode.as_str() {
        "memcached" => memcached(&args),
        "incast" => incast(&args),
        "partition-aggregate" => partition_aggregate(&args),
        "sweep" => sweep(&args),
        _ => usage(),
    }
}

/// Writes the run's metrics artifacts, prints the conservation audit, and
/// (under `--check-invariants`) exits non-zero on an unbalanced book.
///
/// `tag` is namespaced by subcommand and fabric (e.g.
/// `memcached_fattree`), so scenario variants never clobber each other's
/// default artifacts under `results/`.
fn emit_observability(
    tag: &str,
    args: &Args,
    metrics: &MetricsRegistry,
    conservation: &DropAccounting,
    exec: Option<&ExecReport>,
) {
    let json_override = {
        let p = args.get("--metrics", String::new());
        (!p.is_empty()).then(|| PathBuf::from(p))
    };
    // A redirected run keeps every artifact (CSV twin, exec stats) next
    // to the redirected JSON instead of clobbering the defaults under
    // results/.
    let exec_override = json_override.as_ref().map(|p| {
        let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("metrics");
        p.with_file_name(format!("{stem}_exec.json"))
    });
    match write_metrics_artifacts(tag, metrics, json_override) {
        Ok(path) => println!("\nmetrics: {} ({} metrics)", path.display(), metrics.len()),
        Err(e) => eprintln!("warning: failed to write metrics artifacts: {e}"),
    }
    if let Some(exec) = exec {
        // Executor statistics differ between serial and parallel runs by
        // construction; keep them out of the comparable model scrape.
        let mut reg = MetricsRegistry::new();
        reg.record("exec", exec);
        if let Err(e) = write_metrics_artifacts(&format!("{tag}_exec"), &reg, exec_override) {
            eprintln!("warning: failed to write executor metrics: {e}");
        }
    }
    if conservation.is_balanced() {
        println!(
            "frame conservation: balanced (nodes tx {} + lost {}, switches tx-to-nodes {}, \
             nic rx {} + ring drops {})",
            conservation.node_tx_frames,
            conservation.node_tx_loss,
            conservation.switch_tx_to_nodes,
            conservation.node_rx_frames,
            conservation.node_rx_ring_drops
        );
    } else {
        eprintln!("frame conservation VIOLATED:");
        for v in &conservation.violations {
            eprintln!("  {v}");
        }
        if args.flag("--check-invariants") {
            std::process::exit(1);
        }
    }
}

/// Prints the scheduler's counters after a controlled run.
fn print_control(ctl: Option<&ControlReport>) {
    let Some(ctl) = ctl else { return };
    println!(
        "control plane: heartbeats={} lookups={} suspicions={} (false={}) detections={} \
         rejoins={}",
        ctl.heartbeats,
        ctl.lookups,
        ctl.suspicions,
        ctl.false_positive_suspicions,
        ctl.detections,
        ctl.rejoins
    );
    println!(
        "  failovers={} scale_ups={} scale_downs={} commands sent={} retried={} acked={} \
         dropped={} stalls={}",
        ctl.failovers,
        ctl.scale_ups,
        ctl.scale_downs,
        ctl.commands_sent,
        ctl.commands_retried,
        ctl.commands_acked,
        ctl.commands_dropped,
        ctl.placement_stalls
    );
    for (id, desired, ready) in &ctl.replicas {
        println!("  service {id}: desired={desired} ready={ready}");
    }
    if !ctl.replacement_latency.is_empty() {
        println!(
            "  replacement latency: n={} p50={:.1}us max={:.1}us",
            ctl.replacement_latency.count(),
            ctl.replacement_latency.quantile(0.5) as f64 / 1e3,
            ctl.replacement_latency.quantile(1.0) as f64 / 1e3
        );
    }
}

/// Prints the open-loop offered/violation/shed summary after a run.
fn print_slo(offered: u64, slo: &SloStats) {
    if offered == 0 && slo.is_empty() {
        return;
    }
    let target = slo.target.map_or("none".to_string(), |t| t.to_string());
    println!(
        "open loop: offered={offered} completed={} shed={} slo_target={target} \
         violations={} ({:.1}%)",
        slo.completed,
        slo.shed,
        slo.violations,
        slo.violation_fraction() * 100.0
    );
}

/// Builds the memcached configuration from CLI flags. Shared between the
/// `memcached` subcommand and sweep warm/point runs (which pass
/// `verbose: false` to keep parallel workers quiet).
fn memcached_cfg(args: &Args, verbose: bool) -> McExperimentConfig {
    let mut cfg = McExperimentConfig::mini(
        positive("--racks", args.get("--racks", 16)),
        positive("--requests", args.get("--requests", 150)),
    );
    cfg.servers_per_rack = positive("--spr", args.get("--spr", cfg.servers_per_rack));
    cfg.mc_per_rack = positive("--mc-per-rack", args.get("--mc-per-rack", cfg.mc_per_rack));
    cfg.workers = positive("--workers", args.get("--workers", cfg.workers));
    cfg.seed = args.get("--seed", cfg.seed);
    cfg.ten_gig = args.flag("--10g");
    if let FabricKind::FatTree(ft) = fabric_for(args, &["--racks", "--spr"]) {
        cfg = cfg.on_fat_tree(ft);
    }
    cfg.cc = cc(args);
    cfg.faults = fault_plan(args, verbose);
    let deadline_ms: u64 = args.get("--deadline", 0);
    if deadline_ms > 0 {
        cfg.request_deadline = Some(diablo_engine::time::SimDuration::from_millis(deadline_ms));
    }
    cfg.proto = match args.get("--proto", "udp".to_string()).as_str() {
        "tcp" => Proto::Tcp,
        "udp" => Proto::Udp,
        _ => usage(),
    };
    cfg.kernel = match args.get("--kernel", "2.6".to_string()).as_str() {
        "2.6" => KernelProfile::linux_2_6_39(),
        "3.5" => KernelProfile::linux_3_5_7(),
        _ => usage(),
    };
    cfg.version = match args.get("--version", "1.4.17".to_string()).as_str() {
        "1.4.15" => McVersion::V1_4_15,
        "1.4.17" => McVersion::V1_4_17,
        _ => usage(),
    };
    cfg.arrival = arrival_spec(args, verbose);
    cfg.slo = slo_target(args);
    cfg.window = positive("--window", args.get("--window", cfg.window));
    if cfg.arrival.is_some() && cfg.proto != Proto::Udp {
        eprintln!("error: --arrival requires --proto udp (open-loop memcached is UDP-only)");
        std::process::exit(2);
    }
    cfg.control = control_config(args);
    if let Some(ctl) = &cfg.control {
        if cfg.arrival.is_none() {
            eprintln!(
                "error: --control-plane memcached requires --arrival (clients discover \
                 endpoints through the registry, which the open-loop client implements)"
            );
            std::process::exit(2);
        }
        if cfg.mc_per_rack + ctl.spares_per_rack >= cfg.servers_per_rack {
            eprintln!(
                "error: --mc-per-rack {} + --spares {} leaves no client slots at --spr {}",
                cfg.mc_per_rack, ctl.spares_per_rack, cfg.servers_per_rack
            );
            std::process::exit(2);
        }
    }
    // Quantum derived from the rack-cut partition plan.
    cfg.mode = parallel_mode(args);
    cfg
}

fn memcached(args: &Args) {
    banner("wsc_sim", "memcached at scale");
    let cfg = memcached_cfg(args, true);
    let ckpt = checkpoint_policy(args);
    println!(
        "{} nodes ({} racks x {}), {} memcached servers, {:?}, kernel {}, memcached {}, {}",
        cfg.nodes(),
        cfg.racks,
        cfg.servers_per_rack,
        cfg.racks * cfg.mc_per_rack,
        cfg.proto,
        cfg.kernel.name,
        cfg.version.as_str(),
        if cfg.ten_gig { "10 Gbps" } else { "1 Gbps" },
    );
    println!("fabric: {}, congestion control: {}", fabric_desc(&cfg.fabric), cfg.cc.name());
    print_checkpoint(&ckpt);
    let r = run_or_die(try_run_memcached_with(&cfg, &ckpt));
    println!(
        "\n{} requests in {} simulated ({} events, {:.2}s wall)",
        r.latency.count(),
        r.completed_at,
        r.events,
        r.wall.as_secs_f64()
    );
    println!("served={} udp_retries={} failures={}", r.served, r.udp_retries, r.failures);
    print_control(r.control.as_ref());
    print_slo(r.offered, &r.slo);
    if r.timed_out > 0 {
        println!("timed_out={} (expired unanswered; window slots reclaimed)", r.timed_out);
    }
    if r.failure.failed > 0 {
        println!(
            "client failures: failed={} retried={} reconnects={} recovered={} gave_up={} \
             crash_lost={} recovery_time={}ns",
            r.failure.failed,
            r.failure.retried,
            r.failure.reconnects,
            r.failure.recovered,
            r.failure.gave_up,
            r.failure.crash_lost,
            r.failure.recovery_time.as_nanos()
        );
    }
    for (name, v) in percentiles_us(&r.latency) {
        println!("  {name:>6}: {v:>12.1} us");
    }
    let labels = ["local", "1-hop", "2-hop"];
    for (label, h) in labels.iter().zip(&r.by_class) {
        if !h.is_empty() {
            println!(
                "  {label:>6}: n={:<8} p50={:.1}us p99={:.1}us",
                h.count(),
                h.quantile(0.5) as f64 / 1e3,
                h.quantile(0.99) as f64 / 1e3
            );
        }
    }
    let tag = format!("memcached_{}", fabric_short(&cfg.fabric));
    emit_observability(&tag, args, &r.metrics, &r.conservation, r.exec.as_ref());
}

/// Builds the incast configuration from CLI flags. Shared between the
/// `incast` subcommand and sweep warm/point runs.
fn incast_cfg(args: &Args, verbose: bool) -> IncastConfig {
    let client = match args.get("--client", "pthread".to_string()).as_str() {
        "pthread" => IncastClientKind::Pthread,
        "epoll" => IncastClientKind::Epoll,
        _ => usage(),
    };
    let mut cfg = IncastConfig::fig6a(positive("--servers", args.get("--servers", 8)));
    cfg.iterations = positive("--iterations", args.get("--iterations", 10));
    cfg.block_bytes = positive("--block", args.get("--block", 256 * 1024));
    cfg.client = client;
    cfg.cpu = Frequency::ghz(positive("--ghz", args.get("--ghz", 4)));
    cfg.ten_gig = args.flag("--10g");
    cfg.seed = args.get("--seed", cfg.seed);
    cfg.faults = fault_plan(args, verbose);
    let deadline_ms: u64 = args.get("--deadline", 0);
    if deadline_ms > 0 {
        cfg.request_deadline = Some(diablo_engine::time::SimDuration::from_millis(deadline_ms));
    }
    cfg.arrival = arrival_spec(args, verbose);
    cfg.slo = slo_target(args);
    cfg.control = control_config(args);
    if cfg.arrival.is_some() && cfg.client != IncastClientKind::Epoll {
        eprintln!("error: --arrival requires --client epoll (the pthread client is closed-loop)");
        std::process::exit(2);
    }
    // Same --racks under serial and --parallel N is the same model, so
    // the two runs' metric scrapes must compare byte-identical.
    cfg.racks = positive("--racks", args.get("--racks", cfg.racks));
    if let FabricKind::FatTree(ft) = fabric_for(args, &["--racks"]) {
        cfg = cfg.on_fat_tree(ft);
    }
    cfg.cc = cc(args);
    // Buffer depth is the axis the incast literature sweeps, so it gets a
    // first-class knob; 0 keeps the workload's shallow default.
    let buffer_bytes: u32 = args.get("--buffer", 0);
    if buffer_bytes > 0 {
        cfg.switch = Some(SwitchTemplate {
            buffer: diablo_net::switch::BufferConfig::PerPort { bytes_per_port: buffer_bytes },
            ..SwitchTemplate::gbe_shallow()
        });
    }
    cfg.mode = parallel_mode(args);
    cfg
}

fn incast(args: &Args) {
    banner("wsc_sim", "TCP incast");
    let cfg = incast_cfg(args, true);
    let ckpt = checkpoint_policy(args);
    println!(
        "{} servers, {} iterations, {} B blocks, {:?} client, {} CPU, {}",
        cfg.servers,
        cfg.iterations,
        cfg.block_bytes,
        cfg.client,
        cfg.cpu,
        if cfg.ten_gig { "10 Gbps" } else { "1 Gbps" },
    );
    println!("fabric: {}, congestion control: {}", fabric_desc(&cfg.fabric), cfg.cc.name());
    print_checkpoint(&ckpt);
    let r = run_or_die(try_run_incast_with(&cfg, &ckpt));
    println!(
        "\ngoodput {:.1} Mbps over {} iterations ({} switch drops, {} events)",
        r.goodput_mbps,
        r.iteration_times.len(),
        r.switch_drops,
        r.events
    );
    print_control(r.control.as_ref());
    print_slo(r.offered, &r.slo);
    for (i, d) in r.iteration_times.iter().enumerate() {
        println!("  iteration {:>2}: {d}", i + 1);
    }
    if r.failure.failed > 0 {
        println!(
            "client failures: failed={} retried={} reconnects={} recovered={} gave_up={} \
             crash_lost={} recovery_time={}ns",
            r.failure.failed,
            r.failure.retried,
            r.failure.reconnects,
            r.failure.recovered,
            r.failure.gave_up,
            r.failure.crash_lost,
            r.failure.recovery_time.as_nanos()
        );
    }
    let tag = format!("incast_{}", fabric_short(&cfg.fabric));
    emit_observability(&tag, args, &r.metrics, &r.conservation, r.exec.as_ref());
}

/// Builds the partition-aggregate configuration from CLI flags. Shared
/// between the `partition-aggregate` subcommand and sweep warm/point
/// runs.
fn pa_cfg(args: &Args, verbose: bool) -> PaExperimentConfig {
    let mut cfg = PaExperimentConfig::new(
        positive("--racks", args.get("--racks", 4)),
        positive("--queries", args.get("--queries", 100)),
    );
    cfg.servers_per_rack = positive("--spr", args.get("--spr", cfg.servers_per_rack));
    cfg.deadline = diablo_engine::time::SimDuration::from_micros(positive(
        "--deadline-us",
        args.get("--deadline-us", 1_000),
    ));
    cfg.query_bytes = positive("--query-bytes", args.get("--query-bytes", cfg.query_bytes));
    cfg.answer_bytes = positive("--answer-bytes", args.get("--answer-bytes", cfg.answer_bytes));
    cfg.cross_rack = args.flag("--cross-rack");
    cfg.ten_gig = args.flag("--10g");
    cfg.seed = args.get("--seed", cfg.seed);
    if let FabricKind::FatTree(ft) = fabric_for(args, &["--racks", "--spr"]) {
        cfg = cfg.on_fat_tree(ft);
    }
    cfg.cc = cc(args);
    cfg.faults = fault_plan(args, verbose);
    cfg.arrival = arrival_spec(args, verbose);
    cfg.slo = slo_target(args);
    cfg.control = control_config(args);
    if cfg.control.is_some() && !cfg.cross_rack {
        eprintln!(
            "error: --control-plane partition-aggregate requires --cross-rack \
             (one shared leaf pool for the registry to index)"
        );
        std::process::exit(2);
    }
    cfg.mode = parallel_mode(args);
    cfg
}

fn partition_aggregate(args: &Args) {
    banner("wsc_sim", "partition-aggregate search tier");
    let cfg = pa_cfg(args, true);
    let ckpt = checkpoint_policy(args);
    println!(
        "{} racks x {} servers: {} front-ends fanning {} over {} leaves each, \
         {} queries under a {} deadline, {}",
        cfg.racks,
        cfg.servers_per_rack,
        cfg.racks,
        if cfg.cross_rack { "cluster-wide" } else { "rack-local" },
        cfg.fanout(),
        cfg.queries,
        cfg.deadline,
        if cfg.ten_gig { "10 Gbps" } else { "1 Gbps" },
    );
    println!("fabric: {}, congestion control: {}", fabric_desc(&cfg.fabric), cfg.cc.name());
    print_checkpoint(&ckpt);
    let r = run_or_die(try_run_partition_aggregate_with(&cfg, &ckpt));
    println!(
        "\n{} queries in {} simulated ({} events, {:.2}s wall)",
        r.queries,
        r.completed_at,
        r.events,
        r.wall.as_secs_f64()
    );
    println!(
        "full_aggregates={} deadline_misses={} missing_answers={} leaf_served={}",
        r.full_aggregates, r.deadline_misses, r.missing_answers, r.served
    );
    print_control(r.control.as_ref());
    print_slo(r.offered, &r.slo);
    if !r.latency.is_empty() {
        println!("full-aggregate latency:");
        for (name, v) in percentiles_us(&r.latency) {
            println!("  {name:>6}: {v:>12.1} us");
        }
    }
    let tag = format!("partition_aggregate_{}", fabric_short(&cfg.fabric));
    emit_observability(&tag, args, &r.metrics, &r.conservation, r.exec.as_ref());
}

// ====================================================================
// The sweep subcommand
// ====================================================================

/// Formats a latency quantile in microseconds for a sweep cell (`-` when
/// the histogram is empty).
fn q_us(h: &Histogram, q: f64) -> String {
    if h.is_empty() {
        "-".to_string()
    } else {
        format!("{:.1}", h.quantile(q) as f64 / 1e3)
    }
}

/// The sweep engine's bridge into the three scenario runners: the warm
/// prefix runs with the spec's fixed flags only, and each point adds its
/// axis cells and restores the shared checkpoint.
struct WscRunner<'a> {
    spec: &'a SweepSpec,
}

impl SweepRunner for WscRunner<'_> {
    fn warm(&self, at: SimDuration, path: &Path) -> Result<(), String> {
        let args = Args::from_vec(self.spec.warm_args());
        let at = SimTime::ZERO + at;
        match self.spec.scenario.as_str() {
            "memcached" => warm_memcached(&memcached_cfg(&args, false), path, at),
            "incast" => warm_incast(&incast_cfg(&args, false), path, at),
            "partition-aggregate" => warm_partition_aggregate(&pa_cfg(&args, false), path, at),
            other => unreachable!("scenario `{other}` is validated before the sweep starts"),
        }
        .map_err(|e| e.to_string())
    }

    fn run_point(
        &self,
        point: &SweepPoint,
        warm: Option<&Path>,
    ) -> Result<Vec<(String, String)>, String> {
        let args = Args::from_vec(self.spec.point_args(point));
        let ckpt = CheckpointPolicy { save: None, restore_from: warm.map(Path::to_path_buf) };
        match self.spec.scenario.as_str() {
            "memcached" => {
                let r = try_run_memcached_with(&memcached_cfg(&args, false), &ckpt)
                    .map_err(|e| e.to_string())?;
                Ok(vec![
                    ("served".into(), r.served.to_string()),
                    ("p50_us".into(), q_us(&r.latency, 0.5)),
                    ("p99_us".into(), q_us(&r.latency, 0.99)),
                    ("sim_time".into(), r.completed_at.to_string()),
                    ("events".into(), r.events.to_string()),
                ])
            }
            "incast" => {
                let r = try_run_incast_with(&incast_cfg(&args, false), &ckpt)
                    .map_err(|e| e.to_string())?;
                Ok(vec![
                    ("goodput_mbps".into(), format!("{:.1}", r.goodput_mbps)),
                    ("switch_drops".into(), r.switch_drops.to_string()),
                    ("events".into(), r.events.to_string()),
                ])
            }
            "partition-aggregate" => {
                let r = try_run_partition_aggregate_with(&pa_cfg(&args, false), &ckpt)
                    .map_err(|e| e.to_string())?;
                Ok(vec![
                    ("full_aggregates".into(), r.full_aggregates.to_string()),
                    ("deadline_misses".into(), r.deadline_misses.to_string()),
                    ("p99_us".into(), q_us(&r.latency, 0.99)),
                    ("events".into(), r.events.to_string()),
                ])
            }
            other => unreachable!("scenario `{other}` is validated before the sweep starts"),
        }
    }
}

fn sweep(args: &Args) {
    banner("wsc_sim", "parameter sweep");
    let spec_path = args.get("--spec", String::new());
    if spec_path.is_empty() {
        eprintln!("error: sweep requires --spec <file>");
        std::process::exit(2);
    }
    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read sweep spec {spec_path}: {e}");
        std::process::exit(2);
    });
    let spec = SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {spec_path}: {e}");
        std::process::exit(2);
    });
    if !matches!(spec.scenario.as_str(), "memcached" | "incast" | "partition-aggregate") {
        eprintln!(
            "error: {spec_path}: unknown sweep scenario `{}` \
             (expected memcached|incast|partition-aggregate)",
            spec.scenario
        );
        std::process::exit(2);
    }
    let points = spec.points();
    println!(
        "{} scenario, {} axes, {} points{}",
        spec.scenario,
        spec.axes.len(),
        points.len(),
        spec.warm.map_or(String::new(), |w| format!(", shared warm checkpoint at {w}"))
    );

    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let scenario_file = spec.scenario.replace('-', "_");
    // The warm snapshot default is keyed by the spec digest: editing the
    // spec (different fixed flags, different warm instant) must re-warm,
    // not silently reuse a checkpoint of a different prefix.
    let warm_default = dir.join(format!("sweep_{scenario_file}_{:016x}_warm.snap", spec.digest()));
    let pick = |flag: &str, default: PathBuf| -> PathBuf {
        let p = args.get(flag, String::new());
        if p.is_empty() {
            default
        } else {
            PathBuf::from(p)
        }
    };
    let progress = pick("--progress", dir.join(format!("sweep_{scenario_file}.progress")));
    let warm_path = pick("--warm-checkpoint", warm_default);
    let out_path = pick("--out", dir.join(format!("sweep_{scenario_file}.tsv")));

    let runner = WscRunner { spec: &spec };
    let mut engine =
        SweepEngine::new(&spec, &runner).progress_file(progress.clone()).warm_checkpoint(warm_path);
    if args.flag("--jobs") {
        engine = engine.jobs(positive("--jobs", args.get("--jobs", 0)));
    }
    let started = std::time::Instant::now();
    let outcome = engine.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        let code = match e {
            SweepError::Parse { .. } | SweepError::Invalid(_) => 2,
            _ => 1,
        };
        std::process::exit(code);
    });

    println!();
    print!("{}", outcome.table.render());
    if let Err(e) = std::fs::write(&out_path, outcome.table.to_tsv()) {
        eprintln!("warning: failed to write sweep table {}: {e}", out_path.display());
    }
    println!(
        "\nsweep table: {} ({} points: {} ran, {} resumed, {} failed; {:.2}s wall)",
        out_path.display(),
        points.len(),
        outcome.ran,
        outcome.resumed,
        outcome.failed,
        started.elapsed().as_secs_f64()
    );
    println!("progress: {} (delete to re-run from scratch)", progress.display());
    if outcome.failed > 0 {
        std::process::exit(1);
    }
}
