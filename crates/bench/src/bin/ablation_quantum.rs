//! Ablation: partition-parallel execution — partitions and synchronization
//! quantum vs wall-clock time, with results asserted identical to serial
//! (DESIGN.md decision #4, mirroring DIABLO's multi-FPGA synchronization).

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig, RunMode};
use diablo_engine::time::SimDuration;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Ablation", "Parallel partitions & quantum vs wall-clock (results identical)");
    let racks: usize = args.get("--racks", 8);
    let requests: u64 = args.get("--requests", 60);

    let mut base = McExperimentConfig::mini(racks, requests);
    base.proto = Proto::Udp;

    let serial = {
        let mut cfg = base.clone();
        cfg.mode = RunMode::Serial;
        run_memcached(&cfg)
    };
    println!(
        "serial: {} events, wall {:.3}s, p99 {:.1}us",
        serial.events,
        serial.wall.as_secs_f64(),
        serial.latency.quantile(0.99) as f64 / 1e3
    );

    let mut t = Table::new(vec!["mode", "quantum_ns", "events", "wall_s", "identical"]);
    t.row(vec![
        "serial".into(),
        "-".into(),
        serial.events.to_string(),
        fmt_f(serial.wall.as_secs_f64(), 3),
        "-".into(),
    ]);
    // Explicit undersized quanta: legal (any quantum at or below the cut's
    // lookahead is safe) but slower, which is exactly what this ablation
    // shows. `RunMode::parallel` would derive the full lookahead instead.
    for partitions in [2usize, 4] {
        for quantum_ns in [100u64, 250, 500] {
            let mut cfg = base.clone();
            cfg.mode = RunMode::Parallel {
                partitions,
                quantum: Some(SimDuration::from_nanos(quantum_ns)),
                workers: None,
            };
            let r = run_memcached(&cfg);
            let identical = r.events == serial.events
                && r.latency.quantile(0.99) == serial.latency.quantile(0.99)
                && r.served == serial.served;
            assert!(identical, "parallel run diverged from serial!");
            t.row(vec![
                format!("parallel x{partitions}"),
                quantum_ns.to_string(),
                r.events.to_string(),
                fmt_f(r.wall.as_secs_f64(), 3),
                "yes".into(),
            ]);
            println!(
                "parallel x{partitions} quantum={quantum_ns}ns: wall {:.3}s (identical: {identical})",
                r.wall.as_secs_f64()
            );
        }
    }
    println!();
    print!("{t}");
    println!(
        "\nSmaller explicit quanta tighten the lookahead horizon and add barrier \
         rounds; the derived quantum (RunMode::parallel) uses the cut's full \
         lookahead. Every configuration produces bit-identical results."
    );
    let path = results_dir().join("ablation_quantum.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
