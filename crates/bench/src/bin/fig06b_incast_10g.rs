//! Figure 6(b): Incast goodput on the simulated 10 Gbps fabric under four
//! endpoint configurations: {2 GHz, 4 GHz} CPU x {pthread, epoll} client.
//!
//! Paper shape to reproduce: CPU speed and syscall structure dominate —
//! the 2 GHz pthread client cannot even reach 10G line rate before any
//! collapse; epoll delays the onset of collapse; collapsed throughput does
//! not track CPU speed.

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_incast, IncastClientKind, IncastConfig, SwitchTemplate};
use diablo_net::switch::BufferConfig;

fn main() {
    let args = Args::parse();
    banner("Figure 6(b)", "Incast goodput, 10 Gbps fabric, CPU x client-structure sweep");
    let iterations: u64 = args.get("--iterations", 10);
    // The 10 GbE fabric carries a moderately deeper buffer than the GbE
    // shallow switch (64 KB/port by default): the paper's Figure 6(b)
    // collapse is partial (Gbps-scale), i.e. fast-retransmit-bound, not
    // RTO-bound.
    let buffer_kb: u32 = args.get("--buffer-kb", 256);
    let servers: Vec<usize> =
        if args.flag("--fine") { (1..=23).collect() } else { vec![1, 2, 4, 6, 9, 12, 16, 20, 23] };
    let configs = [
        ("4GHz-pthread", 4, IncastClientKind::Pthread),
        ("4GHz-epoll", 4, IncastClientKind::Epoll),
        ("2GHz-pthread", 2, IncastClientKind::Pthread),
        ("2GHz-epoll", 2, IncastClientKind::Epoll),
    ];

    let mut t =
        Table::new(vec!["servers", "4GHz-pthread", "4GHz-epoll", "2GHz-pthread", "2GHz-epoll"]);
    for &n in &servers {
        let mut row = vec![n.to_string()];
        let mut printed = format!("n={n:>2} ");
        for (name, ghz, kind) in configs {
            let mut cfg = IncastConfig::fig6b(n, ghz, kind);
            cfg.iterations = iterations;
            let mut sw = SwitchTemplate::ten_gbe_fast();
            sw.buffer = BufferConfig::PerPort { bytes_per_port: buffer_kb * 1024 };
            cfg.switch = Some(sw);
            let r = run_incast(&cfg);
            row.push(fmt_f(r.goodput_mbps, 1));
            printed.push_str(&format!(" {name}={:>8.1}", r.goodput_mbps));
        }
        t.row(row);
        println!("{printed}");
    }
    println!();
    print!("{t}");
    println!(
        "\npaper shape: 2 GHz pthread plateaus ~1.8 Gbps; epoll delays collapse; \
         collapsed goodput decouples from CPU speed"
    );
    let path = results_dir().join("fig06b_incast_10g.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
