//! Ablation: switch buffer architecture (DESIGN.md decision #5) — the
//! per-port-vs-shared organization and the size sweep behind the
//! DIABLO-vs-real-hardware gap in Figure 6(a).

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_incast, IncastConfig, SwitchTemplate};
use diablo_net::switch::BufferConfig;

fn main() {
    let args = Args::parse();
    banner("Ablation", "Switch buffer organization & size under 8-server incast");
    let servers: usize = args.get("--servers", 8);
    let iterations: u64 = args.get("--iterations", 4);

    let mut t = Table::new(vec!["organization", "bytes", "goodput_mbps", "drops"]);
    for kb in [4u32, 16, 64, 256] {
        for shared in [false, true] {
            let buffer = if shared {
                // A shared pool the size of all ports' dedicated buffers.
                BufferConfig::Shared { total_bytes: kb * 1024 * (servers as u32 + 1) }
            } else {
                BufferConfig::PerPort { bytes_per_port: kb * 1024 }
            };
            let mut cfg = IncastConfig::fig6a(servers);
            cfg.iterations = iterations;
            cfg.switch = Some(SwitchTemplate { buffer, ..SwitchTemplate::gbe_shallow() });
            let r = run_incast(&cfg);
            let org = if shared { "shared pool" } else { "per-port" };
            t.row(vec![
                org.into(),
                format!("{}K", if shared { kb * (servers as u32 + 1) } else { kb }),
                fmt_f(r.goodput_mbps, 1),
                r.switch_drops.to_string(),
            ]);
            println!(
                "{org:>12} {kb:>4}K/port-equiv: {:>8.1} Mbps  ({} drops)",
                r.goodput_mbps, r.switch_drops
            );
        }
    }
    println!();
    print!("{t}");
    println!(
        "\nThe shared pool absorbs the synchronized burst that per-port \
         partitions drop — the organization difference behind DIABLO's \
         faster-than-hardware collapse in Figure 6(a)."
    );
    let path = results_dir().join("ablation_buffers.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
