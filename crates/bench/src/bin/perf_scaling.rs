//! S5: simulator performance (§5) — wall-clock cost per simulated second,
//! event throughput, and scaling with node count, serial vs
//! partition-parallel.
//!
//! Paper reference points: the FPGA prototype needed ~50 minutes of wall
//! clock per simulated second (a 3,000x slowdown at 4 GHz targets) and
//! showed no performance drop from 500 to 2,000 nodes; an equivalent
//! software simulator would take "almost two weeks" per simulated 10 s.
//! This binary measures what *this* software reproduction achieves.
//!
//! Outputs:
//! * `results/perf_scaling.csv` — the node-scaling table printed above.
//! * `results/bench_engine.json` — machine-readable engine-scaling record:
//!   events/sec, simulation rate (simulated seconds per wall second), and
//!   wall time for a fixed workload at 1, 2, 4, and 8 partitions plus the
//!   serial baseline. Downstream tooling tracks regressions from this file.

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig, RunMode};
use diablo_stack::process::Proto;
use std::fmt::Write as _;

struct Measurement {
    events: u64,
    wall_s: f64,
    sim_s: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
    /// Simulated seconds advanced per wall-clock second (1/slowdown).
    fn sim_rate(&self) -> f64 {
        self.sim_s / self.wall_s.max(1e-9)
    }
    fn slowdown(&self) -> f64 {
        self.wall_s / self.sim_s.max(1e-9)
    }
}

fn measure(cfg: &McExperimentConfig) -> Measurement {
    let r = run_memcached(cfg);
    Measurement {
        events: r.events,
        wall_s: r.wall.as_secs_f64(),
        sim_s: r.completed_at.as_secs_f64().max(1e-9),
    }
}

/// Serializes one measurement as a JSON object body (no surrounding braces).
fn json_fields(m: &Measurement) -> String {
    format!(
        "\"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"sim_rate\": {:.6}",
        m.events,
        m.wall_s,
        m.events_per_sec(),
        m.sim_rate()
    )
}

fn main() {
    let args = Args::parse();
    banner("S5", "Simulator performance and scaling");
    let requests: u64 = args.get("--requests", 60);
    let threads: usize = args.get("--threads", 4);

    let mut t =
        Table::new(vec!["racks", "nodes", "mode", "events", "events/s", "slowdown (wall/sim)"]);
    for racks in [4usize, 8, 16] {
        let mut cfg = McExperimentConfig::mini(racks, requests);
        cfg.proto = Proto::Udp;
        let nodes = cfg.nodes();

        cfg.mode = RunMode::Serial;
        let m = measure(&cfg);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            "serial".into(),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} serial:   {eps:>12.0} ev/s  slowdown={sd:.2}x");

        let mut pcfg = cfg.clone();
        let spec = diablo_core::ClusterSpec::gbe(diablo_net::topology::TopologyConfig {
            racks,
            servers_per_rack: pcfg.servers_per_rack,
            racks_per_array: 16.min(racks),
        });
        pcfg.mode = RunMode::Parallel { partitions: threads, quantum: spec.safe_quantum() };
        let m = measure(&pcfg);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            format!("parallel x{threads}"),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} parallel: {eps:>12.0} ev/s  slowdown={sd:.2}x");
    }
    println!();
    print!("{t}");
    println!(
        "\npaper reference: FPGA prototype ~3,000x slowdown, flat from 500 to 2,000 nodes; \
         pure software estimated ~250x worse than the FPGA"
    );
    let path = results_dir().join("perf_scaling.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());

    // Engine scaling: fixed workload, partitions swept 1 -> 8, with a
    // serial baseline. This is the machine-readable record CI and the
    // roadmap's perf tracking consume.
    let scale_racks: usize = args.get("--scale-racks", 8);
    let mut base = McExperimentConfig::mini(scale_racks, requests);
    base.proto = Proto::Udp;
    let spec = diablo_core::ClusterSpec::gbe(diablo_net::topology::TopologyConfig {
        racks: scale_racks,
        servers_per_rack: base.servers_per_rack,
        racks_per_array: 16.min(scale_racks),
    });
    let quantum = spec.safe_quantum();

    println!("\nengine scaling (racks={scale_racks}, requests={requests}):");
    base.mode = RunMode::Serial;
    let serial = measure(&base);
    println!(
        "  serial:        {:>12.0} ev/s  sim-rate={:.3e}",
        serial.events_per_sec(),
        serial.sim_rate()
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"engine_scaling\",").unwrap();
    writeln!(json, "  \"workload\": \"memcached_udp\",").unwrap();
    writeln!(json, "  \"racks\": {scale_racks},").unwrap();
    writeln!(json, "  \"nodes\": {},", base.nodes()).unwrap();
    writeln!(json, "  \"requests_per_client\": {requests},").unwrap();
    writeln!(json, "  \"quantum_ps\": {},", quantum.as_picos()).unwrap();
    writeln!(json, "  \"serial\": {{ {} }},", json_fields(&serial)).unwrap();
    writeln!(json, "  \"parallel\": [").unwrap();
    let parts = [1usize, 2, 4, 8];
    for (i, &partitions) in parts.iter().enumerate() {
        let mut cfg = base.clone();
        cfg.mode = RunMode::Parallel { partitions, quantum };
        let m = measure(&cfg);
        let speedup = m.events_per_sec() / serial.events_per_sec().max(1e-9);
        println!(
            "  parallel x{partitions}:   {:>12.0} ev/s  sim-rate={:.3e}  ({speedup:.2}x serial)",
            m.events_per_sec(),
            m.sim_rate()
        );
        writeln!(
            json,
            "    {{ \"partitions\": {partitions}, {}, \"speedup_vs_serial\": {:.3} }}{}",
            json_fields(&m),
            speedup,
            if i + 1 < parts.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let jpath = results_dir().join("bench_engine.json");
    std::fs::create_dir_all(jpath.parent().expect("results dir parent")).expect("mkdir results");
    std::fs::write(&jpath, json).expect("write json");
    println!("json: {}", jpath.display());
}
