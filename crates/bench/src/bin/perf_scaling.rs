//! S5: simulator performance (§5) — wall-clock cost per simulated second,
//! event throughput, and scaling with node count, serial vs
//! partition-parallel.
//!
//! Paper reference points: the FPGA prototype needed ~50 minutes of wall
//! clock per simulated second (a 3,000x slowdown at 4 GHz targets) and
//! showed no performance drop from 500 to 2,000 nodes; an equivalent
//! software simulator would take "almost two weeks" per simulated 10 s.
//! This binary measures what *this* software reproduction achieves.
//!
//! Parallel runs derive their synchronization quantum from the rack-cut
//! partition plan (`RunMode::parallel`), so every partition count is
//! measured with the window its own cut actually supports instead of one
//! hand-picked constant. Each configuration is timed best-of-`--repeat`
//! (results are deterministic; only host noise differs between runs), and
//! every sweep interleaves its configurations round-robin so seconds-scale
//! host-frequency drift hits every configuration alike instead of
//! flattering whichever ran last. Speedups are medians of per-round paired
//! wall ratios (see `median_paired_speedup`), not ratios of the best
//! throughputs, so a noise spike in either executor's samples cannot fake
//! or mask a scaling regression.
//!
//! Two modes:
//!
//! * default — the node-scaling table plus the fixed-size engine sweep
//!   (partitions 1→8 at `--scale-racks`), written to
//!   `results/bench_engine.json` as `"benchmark": "engine_scaling"`.
//! * `--grow` — the paper-scale speedup-vs-workers curve: clusters grown
//!   through `--grow-racks` (default 4,16,32,128 racks of 31 servers —
//!   124 → 3,968 servers, the paper's §5 largest run) at a fixed
//!   `--grow-partitions`, each measured serial and with 1/2/4 pinned
//!   workers. Written as `"benchmark": "engine_grow"`. At each scale the
//!   first interleaved round is a warmup for the speedup pairing (memory
//!   for the scale's working set is faulted in by whichever configuration
//!   runs first); with `--repeat N` the pairing uses the remaining N-1
//!   rounds. `--check-speedup X`
//!   gates the largest scale's best multi-worker speedup (enforced only on
//!   hosts with ≥4 cores — fewer cores cannot express the concurrency the
//!   gate asserts); `--baseline FILE` fails the run if any multi-worker
//!   row regresses events/sec by more than 10% against a committed
//!   `bench_engine.json`.
//!
//! Every parallel row records both the *effective* worker count
//! (`workers`, from the executor's report) and the *requested* one
//! (`workers_requested`), so a silent clamp — more workers asked for than
//! partitions, or a `DIABLO_WORKERS` override that didn't take — is
//! visible in the artifact. Rows also carry lane sanity warnings: a
//! multi-partition run that never sent a cross-partition event, or a
//! multi-worker run whose exchange lanes stayed empty, almost certainly
//! isn't measuring what it claims to.

use diablo_bench::{banner, best_of, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig, RunMode};
use diablo_engine::prelude::ExecReport;
use diablo_stack::process::Proto;
use std::fmt::Write as _;

struct Measurement {
    events: u64,
    wall_s: f64,
    sim_s: f64,
    exec: Option<ExecReport>,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
    /// Simulated seconds advanced per wall-clock second (1/slowdown).
    fn sim_rate(&self) -> f64 {
        self.sim_s / self.wall_s.max(1e-9)
    }
    fn slowdown(&self) -> f64 {
        self.wall_s / self.sim_s.max(1e-9)
    }
}

fn measure(cfg: &McExperimentConfig, repeat: usize) -> Measurement {
    best_of(
        repeat,
        || {
            let r = run_memcached(cfg);
            Measurement {
                events: r.events,
                wall_s: r.wall.as_secs_f64(),
                sim_s: r.completed_at.as_secs_f64().max(1e-9),
                exec: r.exec,
            }
        },
        |m| m.wall_s,
    )
}

/// Lane sanity for a parallel measurement: warning labels (empty when
/// healthy) that go to stderr and into the JSON row.
fn sanity_warnings(m: &Measurement, partitions: usize) -> Vec<&'static str> {
    let Some(exec) = &m.exec else { return Vec::new() };
    let mut w = Vec::new();
    if partitions > 1 && exec.partitions.iter().map(|p| p.sent_cross).sum::<u64>() == 0 {
        w.push("no_cross_partition_events");
    }
    if exec.workers.len() > 1 && exec.lane_events() == 0 {
        w.push("no_cross_worker_lane_events");
    }
    if exec.workers.len() < exec.workers_requested {
        w.push("workers_clamped_below_request");
    }
    w
}

/// Serializes one measurement as a JSON object body (no surrounding
/// braces). Parallel measurements carry the executor's synchronization
/// statistics so the record explains *why* a configuration scales —
/// including the effective vs. requested worker counts.
fn json_fields(m: &Measurement, warnings: &[&str]) -> String {
    let mut s = format!(
        "\"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"sim_rate\": {:.6}",
        m.events,
        m.wall_s,
        m.events_per_sec(),
        m.sim_rate()
    );
    if let Some(exec) = &m.exec {
        write!(
            s,
            ", \"lookahead_ps\": {}, \"workers\": {}, \"workers_requested\": {}, \
             \"rounds\": {}, \"events_per_round\": {:.1}, \"barrier_wait_ms\": {:.3}, \
             \"lane_events\": {}, \"dispatch_batches\": {}",
            exec.lookahead_ps,
            exec.workers.len(),
            exec.workers_requested,
            exec.rounds(),
            exec.events_per_round(),
            exec.barrier_wait_ns() as f64 / 1e6,
            exec.lane_events(),
            exec.dispatch_batches()
        )
        .unwrap();
    }
    if !warnings.is_empty() {
        let list: Vec<String> = warnings.iter().map(|w| format!("\"{w}\"")).collect();
        write!(s, ", \"warnings\": [{}]", list.join(", ")).unwrap();
    }
    s
}

/// Median of per-round paired wall ratios serial/other: within one
/// round-robin cycle the host runs every configuration back to back, so
/// the ratio of that cycle cancels whatever speed the host happened to
/// have. Taking a ratio of best-of minima instead would compare walls from
/// *different* host moments, and a rare fast window hitting one slot skews
/// that by several percent.
fn median_paired_speedup(serial_walls: &[f64], other_walls: &[f64]) -> f64 {
    let mut ratios: Vec<f64> =
        serial_walls.iter().zip(other_walls).map(|(s, p)| s / p.max(1e-9)).collect();
    ratios.sort_by(f64::total_cmp);
    let n = ratios.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        ratios[n / 2]
    } else {
        (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
    }
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Extracts `"key": <number>` from a single JSON line (the emitter writes
/// one row per line, which is what makes this line-oriented reader enough
/// for the baseline regression check — no JSON parser dependency needed).
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads every per-row line carrying `racks`/`workers_requested`/
/// `events_per_sec` from a grow-mode `bench_engine.json`, keyed by
/// `(racks, workers_requested)`.
fn read_baseline_rows(text: &str) -> Vec<((u64, u64), f64)> {
    text.lines()
        .filter_map(|line| {
            let racks = extract_num(line, "racks")? as u64;
            let workers_req = extract_num(line, "workers_requested")? as u64;
            let eps = extract_num(line, "events_per_sec")?;
            Some(((racks, workers_req), eps))
        })
        .collect()
}

/// `--grow`: the paper-scale speedup-vs-workers curve. Exits the process
/// on gate or baseline failure.
fn run_grow(args: &Args) {
    let racks_spec: String = args.get("--grow-racks", "4,16,32,128".to_string());
    let racks_list: Vec<usize> = racks_spec
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| {
            t.trim().parse().expect("--grow-racks takes a comma-separated list of rack counts")
        })
        .collect();
    let requests: u64 = args.get("--grow-requests", 6);
    let partitions: usize = args.get("--grow-partitions", 4);
    let repeat: usize = args.get("--repeat", 2);
    let check_speedup: f64 = args.get("--check-speedup", 0.0);
    let baseline: Option<String> =
        if args.flag("--baseline") { Some(args.get("--baseline", String::new())) } else { None };
    let cores = host_cores();
    let worker_points: Vec<usize> =
        [1usize, 2, 4].into_iter().filter(|&w| w <= partitions).collect();

    println!(
        "grow mode: racks {racks_list:?} x {partitions} partitions, workers {worker_points:?}, \
         {requests} requests/client, host cores {cores}"
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"engine_grow\",").unwrap();
    writeln!(json, "  \"workload\": \"memcached_udp_paper\",").unwrap();
    writeln!(json, "  \"host_cores\": {cores},").unwrap();
    writeln!(json, "  \"partitions\": {partitions},").unwrap();
    writeln!(json, "  \"requests_per_client\": {requests},").unwrap();
    writeln!(json, "  \"scales\": [").unwrap();

    // Speedup of the best multi-worker row at the largest scale, for the
    // gate below.
    let mut gate_speedup = f64::NAN;
    let mut fresh_rows: Vec<((u64, u64), f64)> = Vec::new();

    for (si, &racks) in racks_list.iter().enumerate() {
        let mut base = McExperimentConfig::paper(racks, requests);
        base.proto = Proto::Udp;
        let servers = base.nodes();

        // Interleave serial and every worker point round-robin, rotating
        // the start slot per round (same rationale as the default sweep).
        let modes: Vec<RunMode> = std::iter::once(RunMode::Serial)
            .chain(worker_points.iter().map(|&w| RunMode::parallel_with_workers(partitions, w)))
            .collect();
        let mut best: Vec<Option<Measurement>> = modes.iter().map(|_| None).collect();
        let mut walls: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
        for round in 0..repeat.max(1) {
            // Round 0 is a warmup at this scale: its first run pays the
            // full page-fault cost of the largest allocation the process
            // has seen so far, and rotation places the serial executor in
            // that first slot — pairing round 0's walls would credit the
            // parallel rows with serial's one-time warmup. With repeat >= 2
            // the speedup pairing uses rounds 1.. only; best-of throughput
            // still considers every round (a warmup wall never wins it).
            let timed = round > 0 || repeat <= 1;
            for k in 0..modes.len() {
                let slot = (round + k) % modes.len();
                let mut cfg = base.clone();
                cfg.mode = modes[slot];
                let m = measure(&cfg, 1);
                if timed {
                    walls[slot].push(m.wall_s);
                }
                if best[slot].as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
                    best[slot] = Some(m);
                }
            }
        }
        let mut best = best.into_iter().map(|m| m.expect("measured"));
        let serial = best.next().expect("serial slot");
        println!(
            "racks={racks:>3} servers={servers:>4} serial: {:>12.0} ev/s",
            serial.events_per_sec()
        );
        writeln!(json, "    {{").unwrap();
        writeln!(json, "      \"racks\": {racks}, \"servers\": {servers},").unwrap();
        writeln!(json, "      \"serial\": {{ {} }},", json_fields(&serial, &[])).unwrap();
        writeln!(json, "      \"curve\": [").unwrap();
        for (wi, (&w, m)) in worker_points.iter().zip(best).enumerate() {
            let speedup = median_paired_speedup(&walls[0], &walls[wi + 1]);
            let warnings = sanity_warnings(&m, partitions);
            for warn in &warnings {
                eprintln!("warning: racks={racks} workers={w}: {warn}");
            }
            let effective = m.exec.as_ref().map_or(1, |e| e.workers.len());
            println!(
                "racks={racks:>3} servers={servers:>4} par{partitions}xw{w}: {:>12.0} ev/s  \
                 ({speedup:.2}x serial, {effective} effective workers)",
                m.events_per_sec()
            );
            if w > 1 {
                fresh_rows.push(((racks as u64, w as u64), m.events_per_sec()));
                if si + 1 == racks_list.len() && (gate_speedup.is_nan() || speedup > gate_speedup) {
                    gate_speedup = speedup;
                }
            }
            writeln!(
                json,
                "        {{ \"racks\": {racks}, \"servers\": {servers}, \
                 \"partitions\": {partitions}, {}, \"speedup_vs_serial\": {:.3} }}{}",
                json_fields(&m, &warnings),
                speedup,
                if wi + 1 < worker_points.len() { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(json, "      ]").unwrap();
        writeln!(json, "    }}{}", if si + 1 < racks_list.len() { "," } else { "" }).unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let jpath = results_dir().join("bench_engine.json");
    std::fs::create_dir_all(jpath.parent().expect("results dir parent")).expect("mkdir results");
    std::fs::write(&jpath, json).expect("write json");
    println!("json: {}", jpath.display());

    let mut failed = false;
    if let Some(path) = baseline {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let base_rows = read_baseline_rows(&text);
                for &(key, fresh_eps) in &fresh_rows {
                    let Some(&(_, base_eps)) = base_rows.iter().find(|(k, _)| *k == key) else {
                        continue;
                    };
                    if fresh_eps < 0.9 * base_eps {
                        eprintln!(
                            "FAIL: racks={} workers_requested={} regressed to {fresh_eps:.0} \
                             ev/s, more than 10% below the baseline {base_eps:.0} ev/s ({path})",
                            key.0, key.1
                        );
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL: cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if check_speedup > 0.0 {
        if cores >= 4 {
            // NaN (no multi-worker row measured) must fail too.
            if gate_speedup.is_nan() || gate_speedup < check_speedup {
                eprintln!(
                    "FAIL: best multi-worker speedup at the largest scale is \
                     {gate_speedup:.3}, below the required {check_speedup:.3}"
                );
                failed = true;
            }
        } else {
            println!(
                "note: speedup gate ({check_speedup:.2}x) skipped — host has {cores} core(s), \
                 the gate needs >= 4 to express the asserted concurrency"
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::parse();
    banner("S5", "Simulator performance and scaling");
    if args.flag("--grow") {
        run_grow(&args);
        return;
    }
    let requests: u64 = args.get("--requests", 60);
    let threads: usize = args.get("--threads", 4);
    let repeat: usize = args.get("--repeat", 2);
    let check_speedup: f64 = args.get("--check-speedup", 0.0);

    let mut t =
        Table::new(vec!["racks", "nodes", "mode", "events", "events/s", "slowdown (wall/sim)"]);
    for racks in [4usize, 8, 16] {
        let mut cfg = McExperimentConfig::mini(racks, requests);
        cfg.proto = Proto::Udp;
        let nodes = cfg.nodes();

        cfg.mode = RunMode::Serial;
        let m = measure(&cfg, repeat);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            "serial".into(),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} serial:   {eps:>12.0} ev/s  slowdown={sd:.2}x");

        let mut pcfg = cfg.clone();
        pcfg.mode = RunMode::parallel(threads);
        let m = measure(&pcfg, repeat);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            format!("parallel x{threads}"),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} parallel: {eps:>12.0} ev/s  slowdown={sd:.2}x");
    }
    println!();
    print!("{t}");
    println!(
        "\npaper reference: FPGA prototype ~3,000x slowdown, flat from 500 to 2,000 nodes; \
         pure software estimated ~250x worse than the FPGA"
    );
    let path = results_dir().join("perf_scaling.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());

    // Engine scaling: fixed workload, partitions swept 1 -> 8, with a
    // serial baseline. Each partition count derives its quantum from its
    // own rack-cut plan. This is the machine-readable record CI and the
    // roadmap's perf tracking consume. The workload is larger than the
    // table sweep's so setup cost stops dominating, and the repeats are
    // interleaved across configurations (see module docs).
    let scale_racks: usize = args.get("--scale-racks", 8);
    let scale_requests: u64 = args.get("--scale-requests", 480);
    let mut base = McExperimentConfig::mini(scale_racks, scale_requests);
    base.proto = Proto::Udp;

    let parts = [1usize, 2, 4, 8];
    let modes: Vec<RunMode> = std::iter::once(RunMode::Serial)
        .chain(parts.iter().map(|&p| RunMode::parallel(p)))
        .collect();
    let mut best: Vec<Option<Measurement>> = modes.iter().map(|_| None).collect();
    let mut walls: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
    for round in 0..repeat.max(1) {
        // Rotate the starting configuration each round: if within-cycle
        // position correlates with host speed (boost decay, cache or
        // allocator state left by the previous run), a fixed order would
        // systematically favor whichever config always ran first.
        for k in 0..modes.len() {
            let slot = (round + k) % modes.len();
            let mut cfg = base.clone();
            cfg.mode = modes[slot];
            let m = measure(&cfg, 1);
            walls[slot].push(m.wall_s);
            if best[slot].as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
                best[slot] = Some(m);
            }
        }
    }
    let mut best = best.into_iter().map(|m| m.expect("measured"));
    let serial = best.next().expect("serial slot");

    println!(
        "\nengine scaling (racks={scale_racks}, requests={scale_requests}, \
         interleaved best of {repeat}, host cores {}):",
        host_cores()
    );
    println!(
        "  serial:        {:>12.0} ev/s  sim-rate={:.3e}",
        serial.events_per_sec(),
        serial.sim_rate()
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"engine_scaling\",").unwrap();
    writeln!(json, "  \"workload\": \"memcached_udp\",").unwrap();
    writeln!(json, "  \"host_cores\": {},", host_cores()).unwrap();
    writeln!(json, "  \"racks\": {scale_racks},").unwrap();
    writeln!(json, "  \"nodes\": {},", base.nodes()).unwrap();
    writeln!(json, "  \"requests_per_client\": {scale_requests},").unwrap();
    writeln!(json, "  \"quantum\": \"derived from the partition cut (see lookahead_ps)\",")
        .unwrap();
    writeln!(json, "  \"serial\": {{ {} }},", json_fields(&serial, &[])).unwrap();
    writeln!(json, "  \"parallel\": [").unwrap();
    let mut speedup_at_2 = f64::NAN;
    for (i, (&partitions, m)) in parts.iter().zip(best).enumerate() {
        let speedup = median_paired_speedup(&walls[0], &walls[i + 1]);
        if partitions == 2 {
            speedup_at_2 = speedup;
        }
        let warnings = sanity_warnings(&m, partitions);
        for warn in &warnings {
            eprintln!("warning: partitions={partitions}: {warn}");
        }
        let rounds = m.exec.as_ref().map_or(0, |e| e.rounds());
        let effective = m.exec.as_ref().map_or(1, |e| e.workers.len());
        println!(
            "  parallel x{partitions}:   {:>12.0} ev/s  sim-rate={:.3e}  rounds={rounds}  \
             workers={effective}  ({speedup:.2}x serial)",
            m.events_per_sec(),
            m.sim_rate()
        );
        writeln!(
            json,
            "    {{ \"partitions\": {partitions}, {}, \"speedup_vs_serial\": {:.3} }}{}",
            json_fields(&m, &warnings),
            speedup,
            if i + 1 < parts.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let jpath = results_dir().join("bench_engine.json");
    std::fs::create_dir_all(jpath.parent().expect("results dir parent")).expect("mkdir results");
    std::fs::write(&jpath, json).expect("write json");
    println!("json: {}", jpath.display());

    // NaN (no measurement) must fail the gate too, hence the negated form.
    let gate_ok = speedup_at_2 >= check_speedup;
    if check_speedup > 0.0 && !gate_ok {
        eprintln!(
            "FAIL: speedup_vs_serial at 2 partitions is {speedup_at_2:.3}, \
             below the required {check_speedup:.3}"
        );
        std::process::exit(1);
    }
}
