//! S5: simulator performance (§5) — wall-clock cost per simulated second,
//! event throughput, and scaling with node count, serial vs
//! partition-parallel.
//!
//! Paper reference points: the FPGA prototype needed ~50 minutes of wall
//! clock per simulated second (a 3,000x slowdown at 4 GHz targets) and
//! showed no performance drop from 500 to 2,000 nodes; an equivalent
//! software simulator would take "almost two weeks" per simulated 10 s.
//! This binary measures what *this* software reproduction achieves.
//!
//! Parallel runs derive their synchronization quantum from the rack-cut
//! partition plan (`RunMode::parallel`), so every partition count is
//! measured with the window its own cut actually supports instead of one
//! hand-picked constant. Each configuration is timed best-of-`--repeat`
//! (results are deterministic; only host noise differs between runs), and
//! the engine-scaling sweep interleaves its configurations round-robin so
//! seconds-scale host-frequency drift hits every configuration alike
//! instead of flattering whichever ran last. Speedups are medians of
//! per-round paired wall ratios (see the sweep below), not ratios of the
//! best throughputs, so a noise spike in either executor's samples cannot
//! fake or mask a scaling regression.
//!
//! Outputs:
//! * `results/perf_scaling.csv` — the node-scaling table printed above.
//! * `results/bench_engine.json` — machine-readable engine-scaling record:
//!   events/sec, simulation rate (simulated seconds per wall second),
//!   speedup vs serial, and the executor's synchronization statistics
//!   (barrier rounds, events per round, barrier wait, lane traffic) at 1,
//!   2, 4, and 8 partitions plus the serial baseline. Downstream tooling
//!   tracks regressions from this file; CI fails if the 2-partition
//!   speedup drops below 1.0 (`--check-speedup`).

use diablo_bench::{banner, best_of, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig, RunMode};
use diablo_engine::prelude::ExecReport;
use diablo_stack::process::Proto;
use std::fmt::Write as _;

struct Measurement {
    events: u64,
    wall_s: f64,
    sim_s: f64,
    exec: Option<ExecReport>,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
    /// Simulated seconds advanced per wall-clock second (1/slowdown).
    fn sim_rate(&self) -> f64 {
        self.sim_s / self.wall_s.max(1e-9)
    }
    fn slowdown(&self) -> f64 {
        self.wall_s / self.sim_s.max(1e-9)
    }
}

fn measure(cfg: &McExperimentConfig, repeat: usize) -> Measurement {
    best_of(
        repeat,
        || {
            let r = run_memcached(cfg);
            Measurement {
                events: r.events,
                wall_s: r.wall.as_secs_f64(),
                sim_s: r.completed_at.as_secs_f64().max(1e-9),
                exec: r.exec,
            }
        },
        |m| m.wall_s,
    )
}

/// Serializes one measurement as a JSON object body (no surrounding
/// braces). Parallel measurements carry the executor's synchronization
/// statistics so the record explains *why* a configuration scales.
fn json_fields(m: &Measurement) -> String {
    let mut s = format!(
        "\"events\": {}, \"wall_s\": {:.6}, \"events_per_sec\": {:.1}, \"sim_rate\": {:.6}",
        m.events,
        m.wall_s,
        m.events_per_sec(),
        m.sim_rate()
    );
    if let Some(exec) = &m.exec {
        write!(
            s,
            ", \"lookahead_ps\": {}, \"workers\": {}, \"rounds\": {}, \
             \"events_per_round\": {:.1}, \"barrier_wait_ms\": {:.3}, \"lane_events\": {}",
            exec.lookahead_ps,
            exec.workers.len(),
            exec.rounds(),
            exec.events_per_round(),
            exec.barrier_wait_ns() as f64 / 1e6,
            exec.lane_events()
        )
        .unwrap();
    }
    s
}

fn main() {
    let args = Args::parse();
    banner("S5", "Simulator performance and scaling");
    let requests: u64 = args.get("--requests", 60);
    let threads: usize = args.get("--threads", 4);
    let repeat: usize = args.get("--repeat", 2);
    let check_speedup: f64 = args.get("--check-speedup", 0.0);

    let mut t =
        Table::new(vec!["racks", "nodes", "mode", "events", "events/s", "slowdown (wall/sim)"]);
    for racks in [4usize, 8, 16] {
        let mut cfg = McExperimentConfig::mini(racks, requests);
        cfg.proto = Proto::Udp;
        let nodes = cfg.nodes();

        cfg.mode = RunMode::Serial;
        let m = measure(&cfg, repeat);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            "serial".into(),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} serial:   {eps:>12.0} ev/s  slowdown={sd:.2}x");

        let mut pcfg = cfg.clone();
        pcfg.mode = RunMode::parallel(threads);
        let m = measure(&pcfg, repeat);
        let (sd, eps, ev) = (m.slowdown(), m.events_per_sec(), m.events);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            format!("parallel x{threads}"),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} parallel: {eps:>12.0} ev/s  slowdown={sd:.2}x");
    }
    println!();
    print!("{t}");
    println!(
        "\npaper reference: FPGA prototype ~3,000x slowdown, flat from 500 to 2,000 nodes; \
         pure software estimated ~250x worse than the FPGA"
    );
    let path = results_dir().join("perf_scaling.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());

    // Engine scaling: fixed workload, partitions swept 1 -> 8, with a
    // serial baseline. Each partition count derives its quantum from its
    // own rack-cut plan. This is the machine-readable record CI and the
    // roadmap's perf tracking consume. The workload is larger than the
    // table sweep's so setup cost stops dominating, and the repeats are
    // interleaved across configurations (see module docs).
    let scale_racks: usize = args.get("--scale-racks", 8);
    let scale_requests: u64 = args.get("--scale-requests", 480);
    let mut base = McExperimentConfig::mini(scale_racks, scale_requests);
    base.proto = Proto::Udp;

    let parts = [1usize, 2, 4, 8];
    let modes: Vec<RunMode> = std::iter::once(RunMode::Serial)
        .chain(parts.iter().map(|&p| RunMode::parallel(p)))
        .collect();
    let mut best: Vec<Option<Measurement>> = modes.iter().map(|_| None).collect();
    let mut walls: Vec<Vec<f64>> = modes.iter().map(|_| Vec::new()).collect();
    for round in 0..repeat.max(1) {
        // Rotate the starting configuration each round: if within-cycle
        // position correlates with host speed (boost decay, cache or
        // allocator state left by the previous run), a fixed order would
        // systematically favor whichever config always ran first.
        for k in 0..modes.len() {
            let slot = (round + k) % modes.len();
            let mut cfg = base.clone();
            cfg.mode = modes[slot];
            let m = measure(&cfg, 1);
            walls[slot].push(m.wall_s);
            if best[slot].as_ref().is_none_or(|b| m.wall_s < b.wall_s) {
                best[slot] = Some(m);
            }
        }
    }
    // Speedups are the median of per-round *paired* wall ratios: within one
    // round-robin cycle the host runs every configuration back to back, so
    // the serial/parallel ratio of that cycle cancels whatever speed the
    // host happened to have. Taking a ratio of best-of minima instead would
    // compare walls from *different* host moments, and a rare fast window
    // hitting one slot skews that by several percent.
    let paired_speedup = |slot: usize| -> f64 {
        let mut ratios: Vec<f64> =
            walls[0].iter().zip(&walls[slot]).map(|(s, p)| s / p.max(1e-9)).collect();
        ratios.sort_by(f64::total_cmp);
        let n = ratios.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            ratios[n / 2]
        } else {
            (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0
        }
    };
    let mut best = best.into_iter().map(|m| m.expect("measured"));
    let serial = best.next().expect("serial slot");

    println!(
        "\nengine scaling (racks={scale_racks}, requests={scale_requests}, \
         interleaved best of {repeat}):"
    );
    println!(
        "  serial:        {:>12.0} ev/s  sim-rate={:.3e}",
        serial.events_per_sec(),
        serial.sim_rate()
    );

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"benchmark\": \"engine_scaling\",").unwrap();
    writeln!(json, "  \"workload\": \"memcached_udp\",").unwrap();
    writeln!(json, "  \"racks\": {scale_racks},").unwrap();
    writeln!(json, "  \"nodes\": {},", base.nodes()).unwrap();
    writeln!(json, "  \"requests_per_client\": {scale_requests},").unwrap();
    writeln!(json, "  \"quantum\": \"derived from the partition cut (see lookahead_ps)\",")
        .unwrap();
    writeln!(json, "  \"serial\": {{ {} }},", json_fields(&serial)).unwrap();
    writeln!(json, "  \"parallel\": [").unwrap();
    let mut speedup_at_2 = f64::NAN;
    for (i, (&partitions, m)) in parts.iter().zip(best).enumerate() {
        let speedup = paired_speedup(i + 1);
        if partitions == 2 {
            speedup_at_2 = speedup;
        }
        let rounds = m.exec.as_ref().map_or(0, |e| e.rounds());
        println!(
            "  parallel x{partitions}:   {:>12.0} ev/s  sim-rate={:.3e}  rounds={rounds}  \
             ({speedup:.2}x serial)",
            m.events_per_sec(),
            m.sim_rate()
        );
        writeln!(
            json,
            "    {{ \"partitions\": {partitions}, {}, \"speedup_vs_serial\": {:.3} }}{}",
            json_fields(&m),
            speedup,
            if i + 1 < parts.len() { "," } else { "" }
        )
        .unwrap();
    }
    writeln!(json, "  ]").unwrap();
    writeln!(json, "}}").unwrap();

    let jpath = results_dir().join("bench_engine.json");
    std::fs::create_dir_all(jpath.parent().expect("results dir parent")).expect("mkdir results");
    std::fs::write(&jpath, json).expect("write json");
    println!("json: {}", jpath.display());

    // NaN (no measurement) must fail the gate too, hence the negated form.
    let gate_ok = speedup_at_2 >= check_speedup;
    if check_speedup > 0.0 && !gate_ok {
        eprintln!(
            "FAIL: speedup_vs_serial at 2 partitions is {speedup_at_2:.3}, \
             below the required {check_speedup:.3}"
        );
        std::process::exit(1);
    }
}
