//! S5: simulator performance (§5) — wall-clock cost per simulated second,
//! event throughput, and scaling with node count, serial vs
//! partition-parallel.
//!
//! Paper reference points: the FPGA prototype needed ~50 minutes of wall
//! clock per simulated second (a 3,000x slowdown at 4 GHz targets) and
//! showed no performance drop from 500 to 2,000 nodes; an equivalent
//! software simulator would take "almost two weeks" per simulated 10 s.
//! This binary measures what *this* software reproduction achieves.

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig, RunMode};
use diablo_stack::process::Proto;

fn measure(cfg: &McExperimentConfig) -> (f64, f64, u64) {
    let r = run_memcached(cfg);
    let sim_s = r.completed_at.as_secs_f64().max(1e-9);
    let wall_s = r.wall.as_secs_f64();
    let slowdown = wall_s / sim_s;
    let events_per_sec = r.events as f64 / wall_s.max(1e-9);
    (slowdown, events_per_sec, r.events)
}

fn main() {
    let args = Args::parse();
    banner("S5", "Simulator performance and scaling");
    let requests: u64 = args.get("--requests", 60);
    let threads: usize = args.get("--threads", 4);

    let mut t = Table::new(vec![
        "racks",
        "nodes",
        "mode",
        "events",
        "events/s",
        "slowdown (wall/sim)",
    ]);
    for racks in [4usize, 8, 16] {
        let mut cfg = McExperimentConfig::mini(racks, requests);
        cfg.proto = Proto::Udp;
        let nodes = cfg.nodes();

        cfg.mode = RunMode::Serial;
        let (sd, eps, ev) = measure(&cfg);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            "serial".into(),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} serial:   {eps:>12.0} ev/s  slowdown={sd:.2}x");

        let mut pcfg = cfg.clone();
        let spec = diablo_core::ClusterSpec::gbe(diablo_net::topology::TopologyConfig {
            racks,
            servers_per_rack: pcfg.servers_per_rack,
            racks_per_array: 16.min(racks),
        });
        pcfg.mode = RunMode::Parallel { partitions: threads, quantum: spec.safe_quantum() };
        let (sd, eps, ev) = measure(&pcfg);
        t.row(vec![
            racks.to_string(),
            nodes.to_string(),
            format!("parallel x{threads}"),
            ev.to_string(),
            fmt_f(eps, 0),
            fmt_f(sd, 2),
        ]);
        println!("racks={racks:>2} nodes={nodes:>4} parallel: {eps:>12.0} ev/s  slowdown={sd:.2}x");
    }
    println!();
    print!("{t}");
    println!(
        "\npaper reference: FPGA prototype ~3,000x slowdown, flat from 500 to 2,000 nodes; \
         pure software estimated ~250x worse than the FPGA"
    );
    let path = results_dir().join("perf_scaling.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
