//! Figure 10: PMF of client request latency at scale, classified by the
//! number of switch levels traversed (local / 1-hop / 2-hop), for the
//! 1 Gbps and 10 Gbps interconnects, over UDP.
//!
//! Paper shape to reproduce: most requests complete quickly; a small
//! fraction lands orders of magnitude later; more hops mean more variance;
//! 2-hop requests dominate the overall distribution at scale.

use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::Table;
use diablo_core::run_memcached;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 10", "Latency PMF by hop count, UDP, 1 vs 10 Gbps");
    // Default: 36 mini-racks over 3 arrays so all three hop classes exist.
    let mut base = mc_config_from_args(&args, 36, 120);
    base.proto = Proto::Udp;

    let labels = ["local", "1-hop", "2-hop"];
    let mut csv = Table::new(vec!["link", "class", "latency_us", "fraction"]);
    for ten_gig in [false, true] {
        let mut cfg = base.clone();
        cfg.ten_gig = ten_gig;
        let r = run_memcached(&cfg);
        let link = if ten_gig { "10Gbps" } else { "1Gbps" };
        println!("\n--- {link} interconnect ({} requests) ---", r.latency.count());
        for (class, hist) in r.by_class.iter().enumerate() {
            if hist.is_empty() {
                println!("{:>6}: (no requests)", labels[class]);
                continue;
            }
            println!(
                "{:>6}: n={:<7} p50={:>8.1}us p99={:>9.1}us max={:>10.1}us",
                labels[class],
                hist.count(),
                hist.quantile(0.5) as f64 / 1e3,
                hist.quantile(0.99) as f64 / 1e3,
                hist.max() as f64 / 1e3,
            );
            for (ns, frac) in hist.log_pmf(1_000, 10_000_000_000, 5) {
                if frac > 0.0 {
                    csv.row(vec![
                        link.into(),
                        labels[class].into(),
                        format!("{:.1}", ns as f64 / 1e3),
                        format!("{frac:.6}"),
                    ]);
                }
            }
        }
        let overall = &r.latency;
        println!(
            "overall: n={} p50={:.1}us p99={:.1}us",
            overall.count(),
            overall.quantile(0.5) as f64 / 1e3,
            overall.quantile(0.99) as f64 / 1e3
        );
    }
    println!(
        "\npaper shape: majority <100us; small fraction 100x slower; more hops = more \
         variance; 2-hop dominates the overall PMF"
    );
    let path = results_dir().join("fig10_hop_pmf.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
