//! Table 1: workload types used by recent SIGCOMM datacenter-networking
//! papers.

use diablo_bench::{banner, results_dir};
use diablo_core::report::Table;
use diablo_core::survey::{sigcomm_survey, workload_counts};

fn main() {
    banner("Table 1", "Workload in recent SIGCOMM papers");
    let entries = sigcomm_survey();
    let (micro, trace, app) = workload_counts(&entries);
    let mut t = Table::new(vec!["Types", "Microbenchmark", "Trace", "Application"]);
    t.row(vec!["Number of Papers".into(), micro.to_string(), trace.to_string(), app.to_string()]);
    print!("{t}");
    println!("\npaper: 16 / 3 / 2");
    let path = results_dir().join("tab01_survey.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
