//! Table 2: Rack FPGA resource utilization on a Xilinx Virtex-5 LX155T,
//! regenerated from the parametric FAME resource model.

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_fpga::{Device, RackFpgaDesign};

fn main() {
    let args = Args::parse();
    banner("Table 2", "Rack FPGA resource utilization (Virtex-5 LX155T)");
    let design = RackFpgaDesign {
        pipelines: args.get("--pipelines", 4),
        threads: args.get("--threads", 32),
    };
    let device = Device::virtex5_lx155t();
    let mut t = Table::new(vec!["Component Name", "LUT", "Register", "BRAM", "LUTRAM"]);
    for (name, r) in design.rows() {
        t.row(vec![
            name.to_string(),
            r.lut.to_string(),
            r.reg.to_string(),
            r.bram.to_string(),
            r.lutram.to_string(),
        ]);
    }
    let total = design.total();
    t.row(vec![
        "Total".into(),
        total.lut.to_string(),
        total.reg.to_string(),
        total.bram.to_string(),
        total.lutram.to_string(),
    ]);
    print!("{t}");
    println!(
        "\nsimulates {} servers in {} racks; estimated slice occupancy {}% \
         (paper: 95% of slices at 90 MHz)",
        design.servers(),
        design.racks(),
        fmt_f(device.slice_occupancy(total) * 100.0, 1)
    );
    println!("fits on {}: {}", device.name, device.fits(total));
    let path = results_dir().join("tab02_fpga_resources.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
