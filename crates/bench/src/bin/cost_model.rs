//! C1: the paper's cost claims (§1, §3.4): the 3,000-node BEE3 prototype
//! (~$140K), the projected 32,000-node modern system (~$150K), and the
//! CAPEX/OPEX of the real warehouse-scale array they substitute for
//! ($36M + $800K/month).

use diablo_bench::{banner, results_dir};
use diablo_core::report::{fmt_f, Table};
use diablo_fpga::{RealArrayCost, SystemPlan};

fn main() {
    banner("Cost model", "DIABLO vs building the real array");
    let real = RealArrayCost::default();
    let mut t = Table::new(vec![
        "system",
        "servers",
        "boards",
        "rack FPGAs",
        "switch FPGAs",
        "DRAM GiB",
        "cost $",
        "power W",
        "real CAPEX $",
        "capex ratio",
    ]);
    for plan in [SystemPlan::prototype_3000(), SystemPlan::projected_32000()] {
        let name = match plan.generation {
            diablo_fpga::Generation::Bee3 => "BEE3 prototype",
            diablo_fpga::Generation::Modern2015 => "2015 projection",
        };
        t.row(vec![
            name.into(),
            plan.target_servers.to_string(),
            plan.boards.to_string(),
            plan.rack_fpgas.to_string(),
            plan.switch_fpgas.to_string(),
            plan.dram_gib.to_string(),
            plan.cost_usd.to_string(),
            plan.power_w.to_string(),
            fmt_f(real.capex(plan.target_servers), 0),
            fmt_f(real.capex_ratio(&plan), 0),
        ]);
    }
    print!("{t}");
    println!(
        "\nreal-array OPEX at prototype scale: ${}/month (paper: ~$800K/month)",
        fmt_f(real.opex_per_month(2_976), 0)
    );
    println!("paper reference points: 9-board prototype ~$140K; 32k-node projection ~$150K");
    let path = results_dir().join("cost_model.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
