//! Figure 13(a–f): TCP vs UDP client latency CDFs at three scales on both
//! interconnects.
//!
//! Paper shape to reproduce: on 1 Gbps, UDP clearly wins at the smallest
//! scale, the gap closes at the middle scale, and TCP wins at the largest
//! — the small-scale conclusion is *reversed* by scale. On 10 Gbps the
//! protocols differ much less.

use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::{tail_cdf_us, Table};
use diablo_core::run_memcached;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 13", "TCP vs UDP latency CDFs across scale and interconnect");
    let requests: u64 = args.get("--requests", 150);
    // One, two and four arrays — the paper's 500/1000/2000-node family.
    let scales: Vec<usize> = vec![16, 32, 64];

    let mut csv = Table::new(vec!["panel", "proto", "latency_us", "cum_frac"]);
    let mut summary = Table::new(vec!["panel", "udp_p99_us", "tcp_p99_us", "winner"]);
    for ten_gig in [false, true] {
        for &racks in &scales {
            let panel = format!("{}racks-{}", racks, if ten_gig { "10G" } else { "1G" });
            let mut p99s = Vec::new();
            for proto in [Proto::Udp, Proto::Tcp] {
                let mut cfg = mc_config_from_args(&args, racks, requests);
                cfg.racks = racks;
                cfg.proto = proto;
                cfg.ten_gig = ten_gig;
                let r = run_memcached(&cfg);
                let p99 = r.latency.quantile(0.99) as f64 / 1e3;
                p99s.push(p99);
                let label = if proto == Proto::Udp { "UDP" } else { "TCP" };
                for (us, q) in tail_cdf_us(&r.latency, 0.97) {
                    csv.row(vec![
                        panel.clone(),
                        label.into(),
                        format!("{us:.1}"),
                        format!("{q:.5}"),
                    ]);
                }
            }
            let winner = if p99s[0] < p99s[1] { "UDP" } else { "TCP" };
            println!(
                "{panel:>14}: UDP p99={:>10.1}us  TCP p99={:>10.1}us  -> {winner}",
                p99s[0], p99s[1]
            );
            summary.row(vec![
                panel,
                format!("{:.1}", p99s[0]),
                format!("{:.1}", p99s[1]),
                winner.into(),
            ]);
        }
    }
    println!();
    print!("{summary}");
    println!(
        "\npaper shape: 1G small scale favours UDP, largest favours TCP (conclusion \
         reverses with scale); 10G shows little difference"
    );
    let path = results_dir().join("fig13_tcp_vs_udp.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
