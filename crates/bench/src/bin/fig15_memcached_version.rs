//! Figure 15: impact of the memcached release (1.4.15 vs 1.4.17, i.e.
//! `accept` + `fcntl` vs `accept4`) on client latency, at a small and a
//! large scale, over TCP (where connection setup matters).
//!
//! Paper shape to reproduce: nearly indistinguishable at the small scale;
//! the newer version's tail advantage becomes apparent at the large scale.

use diablo_apps::memcached::McVersion;
use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::{tail_cdf_us, Table};
use diablo_core::run_memcached;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 15", "memcached 1.4.15 vs 1.4.17 at two scales (TCP)");
    let requests: u64 = args.get("--requests", 300);
    let (small, large) = if args.flag("--full") { (16, 64) } else { (4, 16) };

    let mut csv = Table::new(vec!["scale", "version", "latency_us", "cum_frac"]);
    let mut summary = Table::new(vec!["racks", "version", "p50_us", "p99_us"]);
    for racks in [small, large] {
        let mut p99s = Vec::new();
        for version in [McVersion::V1_4_15, McVersion::V1_4_17] {
            let mut cfg = mc_config_from_args(&args, racks, requests);
            cfg.racks = racks;
            cfg.proto = Proto::Tcp;
            cfg.version = version;
            // Connection churn keeps the accept path on the measurement
            // path (clients re-open a connection every 5 requests).
            cfg.reconnect_every = Some(args.get("--reconnect-every", 5));
            let r = run_memcached(&cfg);
            let p99 = r.latency.quantile(0.99) as f64 / 1e3;
            p99s.push(p99);
            summary.row(vec![
                racks.to_string(),
                version.as_str().into(),
                format!("{:.1}", r.latency.quantile(0.50) as f64 / 1e3),
                format!("{p99:.1}"),
            ]);
            println!(
                "racks={racks:>3} memcached {:>7}: p50={:>8.1}us p99={:>9.1}us",
                version.as_str(),
                r.latency.quantile(0.50) as f64 / 1e3,
                p99
            );
            for (us, q) in tail_cdf_us(&r.latency, 0.97) {
                csv.row(vec![
                    racks.to_string(),
                    version.as_str().into(),
                    format!("{us:.1}"),
                    format!("{q:.5}"),
                ]);
            }
        }
        println!(
            "  -> p99 delta at {racks} racks: {:.1}us (1.4.15 minus 1.4.17)",
            p99s[0] - p99s[1]
        );
    }
    println!();
    print!("{summary}");
    println!("\npaper shape: negligible delta at small scale; clear 1.4.17 advantage at scale");
    let path = results_dir().join("fig15_memcached_version.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
