//! Figure 6(a): TCP Incast goodput collapse on a 1 Gbps shallow-buffer
//! switch — the full-stack simulator vs the ns2-like network-only
//! baseline vs the analytical fluid model.
//!
//! Paper shape to reproduce: goodput near ~800-900 Mbps at tiny fan-in,
//! sharp collapse within the first handful of servers (faster than the
//! shared-buffer hardware's), and a modest recovery trend at high fan-in.
//!
//! Defaults are scaled down (5 iterations, a coarse server sweep); use
//! `--iterations 40 --fine` for the paper's parameters.

use diablo_baseline::analytic::incast_goodput_analytic;
use diablo_baseline::run_baseline_incast;
use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_incast, IncastConfig};
use diablo_net::link::LinkParams;
use diablo_net::switch::SwitchConfig;

fn main() {
    let args = Args::parse();
    banner("Figure 6(a)", "TCP Incast goodput, 1 Gbps shallow-buffer switch");
    let iterations: u64 = args.get("--iterations", 5);
    let block: u32 = args.get("--block", 256 * 1024);
    let servers: Vec<usize> = if args.flag("--fine") {
        (1..=24).collect()
    } else {
        vec![1, 2, 3, 4, 6, 8, 12, 16, 20, 24]
    };

    let mut t =
        Table::new(vec!["servers", "diablo_mbps", "ns2like_mbps", "analytic_mbps", "diablo_drops"]);
    for &n in &servers {
        let mut cfg = IncastConfig::fig6a(n);
        cfg.iterations = iterations;
        cfg.block_bytes = block;
        let diablo = run_incast(&cfg);

        let sw = SwitchConfig::shallow_gbe("tor", (n + 2) as u16);
        let ns2 = run_baseline_incast(n, iterations, block as u64, sw, LinkParams::gbe(500));

        let analytic =
            incast_goodput_analytic(1e9, block as f64, 4096.0, n, 10.0 * 1460.0, 0.2, 200e-6) / 1e6;

        t.row(vec![
            n.to_string(),
            fmt_f(diablo.goodput_mbps, 1),
            fmt_f(ns2, 1),
            fmt_f(analytic, 1),
            diablo.switch_drops.to_string(),
        ]);
        println!(
            "n={n:>2}  diablo={:>7.1} Mbps  ns2like={:>7.1} Mbps  analytic={:>7.1} Mbps",
            diablo.goodput_mbps, ns2, analytic
        );
    }
    println!();
    print!("{t}");
    println!("\npaper shape: ~800 Mbps pre-collapse, collapse by ~4-8 servers, mild recovery");
    let path = results_dir().join("fig06a_incast_1g.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
