//! Figure 8: single-rack memcached validation — (a) server throughput and
//! (b) mean client latency as the number of clients grows, for 4 and 8
//! worker threads.
//!
//! Paper shape to reproduce: throughput rises with client count and then
//! saturates; latency stays low and linear with few clients, then grows as
//! the server saturates.

use diablo_bench::{banner, results_dir, Args};
use diablo_core::report::{fmt_f, Table};
use diablo_core::{run_memcached, McExperimentConfig};
use diablo_stack::process::Proto;

fn run_point(clients: usize, workers: usize, requests: u64, seed: u64) -> (f64, f64) {
    let mut cfg = McExperimentConfig::mini(1, requests);
    cfg.servers_per_rack = clients + 1;
    cfg.mc_per_rack = 1;
    cfg.workers = workers;
    cfg.proto = Proto::Tcp;
    cfg.seed = seed;
    // Heavier per-request service cost so saturation appears within the
    // paper's 1..14-client sweep (~15 us of application logic at 4 GHz).
    cfg.request_work = 60_000;
    let r = run_memcached(&cfg);
    let ops_per_sec = r.served as f64 / r.completed_at.as_secs_f64().max(1e-9);
    let mean_us = r.latency.mean() / 1_000.0;
    (ops_per_sec, mean_us)
}

fn main() {
    let args = Args::parse();
    banner("Figure 8", "Single-rack memcached: throughput and latency vs clients");
    let requests: u64 = args.get("--requests", 150);
    let max_clients: usize = args.get("--clients", 14);
    let seed: u64 = args.get("--seed", 7);

    let mut t = Table::new(vec!["clients", "tput_4w_ops", "lat_4w_us", "tput_8w_ops", "lat_8w_us"]);
    for clients in (1..=max_clients).step_by(if max_clients > 8 { 2 } else { 1 }) {
        let (t4, l4) = run_point(clients, 4, requests, seed);
        let (t8, l8) = run_point(clients, 8, requests, seed);
        t.row(vec![clients.to_string(), fmt_f(t4, 0), fmt_f(l4, 1), fmt_f(t8, 0), fmt_f(l8, 1)]);
        println!(
            "clients={clients:>2}  4w: {t4:>9.0} ops/s {l4:>8.1} us   8w: {t8:>9.0} ops/s {l8:>8.1} us"
        );
    }
    println!();
    print!("{t}");
    println!("\npaper shape: throughput saturates with clients; latency linear then explodes");
    let path = results_dir().join("fig08_memcached_rack.csv");
    t.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
