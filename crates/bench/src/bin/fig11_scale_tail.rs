//! Figure 11: 95th–100th percentile latency CDF at three system scales on
//! the 1 Gbps interconnect running UDP.
//!
//! Paper shape to reproduce: the tail worsens with scale — the
//! 99th-percentile latency of the largest system is an order of magnitude
//! beyond the smallest's.

use diablo_bench::{banner, mc_config_from_args, results_dir, Args};
use diablo_core::report::{tail_cdf_us, Table};
use diablo_core::run_memcached;
use diablo_stack::process::Proto;

fn main() {
    let args = Args::parse();
    banner("Figure 11", "95th-100th pct latency CDF vs scale (1 Gbps, UDP)");
    // The paper's 500/1000/2000-node family is one, two and four arrays
    // (16/32/64 racks); scaled-down racks keep exactly that array
    // structure, which is what drives the tail growth.
    let scales: Vec<usize> = vec![16, 32, 64];
    let requests: u64 = args.get("--requests", 150);

    let mut csv = Table::new(vec!["racks", "nodes", "latency_us", "cum_frac"]);
    let mut summary = Table::new(vec!["racks", "nodes", "p95_us", "p99_us", "p99.9_us"]);
    for racks in scales {
        let mut cfg = mc_config_from_args(&args, racks, requests);
        cfg.racks = racks;
        cfg.proto = Proto::Udp;
        let r = run_memcached(&cfg);
        let nodes = cfg.nodes();
        summary.row(vec![
            racks.to_string(),
            nodes.to_string(),
            format!("{:.1}", r.latency.quantile(0.95) as f64 / 1e3),
            format!("{:.1}", r.latency.quantile(0.99) as f64 / 1e3),
            format!("{:.1}", r.latency.quantile(0.999) as f64 / 1e3),
        ]);
        println!(
            "racks={racks:>3} nodes={nodes:>5}: p95={:>9.1}us p99={:>10.1}us p99.9={:>11.1}us",
            r.latency.quantile(0.95) as f64 / 1e3,
            r.latency.quantile(0.99) as f64 / 1e3,
            r.latency.quantile(0.999) as f64 / 1e3
        );
        for (us, q) in tail_cdf_us(&r.latency, 0.95) {
            csv.row(vec![
                racks.to_string(),
                nodes.to_string(),
                format!("{us:.1}"),
                format!("{q:.5}"),
            ]);
        }
    }
    println!();
    print!("{summary}");
    println!("\npaper shape: p99 of the largest scale >= an order of magnitude above the smallest");
    let path = results_dir().join("fig11_scale_tail.csv");
    csv.write_csv(&path).expect("write csv");
    println!("csv: {}", path.display());
}
