//! # diablo-bench — the paper-regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (see
//! `src/bin/`), plus Criterion microbenchmarks covering the §5 simulator
//! performance claims (`benches/`). This library holds the shared
//! plumbing: a tiny argument parser and result-file conventions.
//!
//! Every binary prints the series the corresponding figure plots and
//! writes a CSV under `results/`. Default parameters are scaled down from
//! the paper's (documented per-figure in `EXPERIMENTS.md`); pass
//! `--requests`/`--racks`/`--iterations` to scale up.

#![warn(missing_docs)]

use std::path::PathBuf;

/// Minimal command-line argument access: `--key value` pairs and flags.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Args { raw: std::env::args().skip(1).collect() }
    }

    /// From an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// `true` if `--name` appears.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following `--name`, parsed; `default` when the flag is
    /// absent. A present-but-unparsable value is an error — silently
    /// falling back to the default would make e.g. `--racks abc` run a
    /// differently-shaped experiment than requested.
    pub fn try_get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        let Some(i) = self.raw.iter().position(|a| a == name) else {
            return Ok(default);
        };
        let Some(value) = self.raw.get(i + 1) else {
            return Err(ArgError { flag: name.to_string(), value: None });
        };
        value.parse().map_err(|_| ArgError { flag: name.to_string(), value: Some(value.clone()) })
    }

    /// Like [`Args::try_get`], but reports the offending flag on stderr and
    /// exits non-zero on a malformed value (for binary entry points).
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.try_get(name, default).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }
}

/// Parses `--parallel N` into an execution mode: absent or `1` is serial,
/// `N > 1` is partition-parallel. An explicit `--parallel 0` is
/// contradictory — partitioned execution with zero partitions — and is an
/// error rather than a silent fall-back to serial.
pub fn try_parallel_mode(args: &Args) -> Result<diablo_core::RunMode, String> {
    let n: usize = args.try_get("--parallel", 1).map_err(|e| e.to_string())?;
    // `--sim-workers` pins the engine's worker-thread count (`--workers` is
    // taken by the memcached app's server-thread knob).
    let workers: Option<usize> = if args.flag("--sim-workers") {
        Some(args.try_get("--sim-workers", 0).map_err(|e| e.to_string())?)
    } else {
        None
    };
    match (n, workers) {
        (0, _) => Err("--parallel must be at least 1 (got 0)".to_string()),
        (_, Some(0)) => Err("--sim-workers must be at least 1 (got 0)".to_string()),
        (1, None) => Ok(diablo_core::RunMode::Serial),
        (1, Some(_)) => Err("--sim-workers requires --parallel >= 2".to_string()),
        (n, None) => Ok(diablo_core::RunMode::parallel(n)),
        (n, Some(w)) => Ok(diablo_core::RunMode::parallel_with_workers(n, w)),
    }
}

/// Like [`try_parallel_mode`], but reports the error on stderr and exits
/// non-zero (for binary entry points).
pub fn parallel_mode(args: &Args) -> diablo_core::RunMode {
    try_parallel_mode(args).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Parses a `--topology` value into a fabric kind: `tree` (the classic
/// three-level tree) or `fat-tree:k=K[,hosts=N]` — a 3-tier folded Clos
/// with `K` pods. `hosts=N` attaches `N` hosts per edge switch (default
/// `K/2`, full bisection; more oversubscribes the edge tier). `K` must be
/// even and at least 2.
pub fn try_fabric(value: &str) -> Result<diablo_core::FabricKind, String> {
    use diablo_core::FabricKind;
    use diablo_net::topology::{FatTreeConfig, Topology};
    if value == "tree" {
        return Ok(FabricKind::Tree);
    }
    let Some(params) = value.strip_prefix("fat-tree:") else {
        return Err(format!(
            "invalid value {value:?} for --topology \
             (expected 'tree' or 'fat-tree:k=K[,hosts=N]')"
        ));
    };
    let mut k: Option<usize> = None;
    let mut hosts: Option<usize> = None;
    for part in params.split(',') {
        let Some((key, val)) = part.split_once('=') else {
            return Err(format!(
                "invalid fat-tree parameter {part:?} (expected 'k=K' or 'hosts=N')"
            ));
        };
        let parsed: usize = val
            .parse()
            .map_err(|_| format!("invalid fat-tree parameter value {val:?} for {key:?}"))?;
        match key {
            "k" => k = Some(parsed),
            "hosts" => hosts = Some(parsed),
            _ => {
                return Err(format!("unknown fat-tree parameter {key:?} (expected 'k' or 'hosts')"))
            }
        }
    }
    let Some(k) = k else {
        return Err("fat-tree topology requires k (e.g. fat-tree:k=4)".to_string());
    };
    let mut ft = FatTreeConfig::new(k);
    if let Some(h) = hosts {
        ft.hosts_per_edge = h;
    }
    // Validate through the topology builder so the CLI rejects exactly
    // what the model would reject (odd k, k < 2, zero hosts).
    Topology::fat_tree(ft).map_err(|e| format!("invalid --topology {value:?}: {e}"))?;
    Ok(FabricKind::FatTree(ft))
}

/// Parses the `--topology` flag (default `tree`), exiting non-zero on an
/// invalid value (for binary entry points).
pub fn fabric(args: &Args) -> diablo_core::FabricKind {
    let raw = args.get("--topology", "tree".to_string());
    try_fabric(&raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Parses a `--cc` value into a congestion-control profile: `reno`
/// (NewReno loss recovery, the kernels' default) or `dctcp` (ECN-driven
/// proportional backoff; pairs with a marking fabric).
pub fn try_cc(value: &str) -> Result<diablo_stack::profile::CongestionControl, String> {
    use diablo_stack::profile::CongestionControl;
    match value {
        "reno" => Ok(CongestionControl::Reno),
        "dctcp" => Ok(CongestionControl::Dctcp),
        _ => Err(format!("invalid value {value:?} for --cc (expected 'reno' or 'dctcp')")),
    }
}

/// Parses the `--cc` flag (default `reno`), exiting non-zero on an
/// invalid value (for binary entry points).
pub fn cc(args: &Args) -> diablo_stack::profile::CongestionControl {
    let raw = args.get("--cc", "reno".to_string());
    try_cc(&raw).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// A flag whose value was missing or failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    /// The offending flag, e.g. `--racks`.
    pub flag: String,
    /// The value that failed to parse, or `None` if the flag was last.
    pub value: Option<String>,
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.value {
            Some(v) => write!(f, "invalid value {v:?} for {}", self.flag),
            None => write!(f, "missing value for {}", self.flag),
        }
    }
}

impl std::error::Error for ArgError {}

/// Directory where regenerators drop CSV outputs (`results/` at the
/// workspace root, or `$DIABLO_RESULTS`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("DIABLO_RESULTS") {
        return PathBuf::from(d);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Writes a metric scrape as both JSON and CSV. By default both land
/// under [`results_dir`] as `<tag>_metrics.json` / `<tag>_metrics.csv`;
/// `json_override`, when set, replaces the JSON destination and the CSV
/// twin follows it (same path, `.csv` extension) so a redirected run —
/// a test, a CI sweep — never clobbers the checked-in default
/// artifacts. Returns the JSON path.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing
/// either file.
pub fn write_metrics_artifacts(
    tag: &str,
    metrics: &diablo_engine::metrics::MetricsRegistry,
    json_override: Option<PathBuf>,
) -> std::io::Result<PathBuf> {
    let json_path = match json_override {
        Some(path) => path,
        None => {
            let dir = results_dir();
            std::fs::create_dir_all(&dir)?;
            dir.join(format!("{tag}_metrics.json"))
        }
    };
    if let Some(parent) = json_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&json_path, metrics.to_json())?;
    std::fs::write(json_path.with_extension("csv"), metrics.to_csv())?;
    Ok(json_path)
}

/// Runs `f` `n.max(1)` times and keeps the iteration with the smallest
/// wall-clock cost as reported by `wall`. Deterministic simulations make
/// every iteration produce identical *results*, so best-of-N only filters
/// host-side noise (scheduler hiccups, cold caches) out of the timing —
/// the standard discipline for one-shot macro-benchmarks.
pub fn best_of<R>(n: usize, mut f: impl FnMut() -> R, wall: impl Fn(&R) -> f64) -> R {
    let mut best = f();
    for _ in 1..n.max(1) {
        let candidate = f();
        if wall(&candidate) < wall(&best) {
            best = candidate;
        }
    }
    best
}

/// Prints the standard experiment header.
pub fn banner(id: &str, title: &str) {
    println!("==============================================================");
    println!("DIABLO reproduction — {id}: {title}");
    println!("==============================================================");
}

/// Builds a memcached experiment configuration from CLI arguments, scaled
/// down by default (`--full` restores the paper's 31-servers-per-rack,
/// 2-memcached-per-rack shape; `--requests` sets per-client request count).
pub fn mc_config_from_args(
    args: &Args,
    default_racks: usize,
    default_requests: u64,
) -> diablo_core::McExperimentConfig {
    use diablo_core::McExperimentConfig;
    let racks = args.get("--racks", default_racks);
    let requests = args.get("--requests", default_requests);
    let mut cfg = if args.flag("--full") {
        McExperimentConfig::paper(racks, requests)
    } else {
        let mut c = McExperimentConfig::mini(racks, requests);
        c.servers_per_rack = args.get("--spr", c.servers_per_rack);
        c.mc_per_rack = args.get("--mc-per-rack", c.mc_per_rack);
        c
    };
    cfg.workers = args.get("--workers", cfg.workers);
    cfg.seed = args.get("--seed", cfg.seed);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec!["--racks".into(), "8".into(), "--full".into()]);
        assert_eq!(a.get("--racks", 2usize), 8);
        assert_eq!(a.get("--requests", 100u64), 100);
        assert!(a.flag("--full"));
        assert!(!a.flag("--quick"));
    }

    #[test]
    fn malformed_values_are_errors_not_defaults() {
        let a = Args::from_vec(vec!["--racks".into(), "abc".into()]);
        let err = a.try_get("--racks", 2usize).unwrap_err();
        assert_eq!(err.flag, "--racks");
        assert_eq!(err.value.as_deref(), Some("abc"));
        assert!(err.to_string().contains("--racks"), "{err}");
        assert!(err.to_string().contains("abc"), "{err}");
    }

    #[test]
    fn trailing_flag_without_value_is_an_error() {
        let a = Args::from_vec(vec!["--racks".into()]);
        let err = a.try_get("--racks", 2usize).unwrap_err();
        assert_eq!(err.value, None);
        assert!(err.to_string().contains("missing value"), "{err}");
    }

    #[test]
    fn results_dir_is_somewhere() {
        assert!(results_dir().ends_with("results"));
    }

    #[test]
    fn fabric_parser_accepts_tree_and_fat_tree_forms() {
        use diablo_core::FabricKind;
        assert_eq!(try_fabric("tree").unwrap(), FabricKind::Tree);
        match try_fabric("fat-tree:k=4").unwrap() {
            FabricKind::FatTree(ft) => {
                assert_eq!(ft.k, 4);
                assert_eq!(ft.hosts_per_edge, 2);
            }
            other => panic!("expected fat-tree, got {other:?}"),
        }
        match try_fabric("fat-tree:k=4,hosts=3").unwrap() {
            FabricKind::FatTree(ft) => {
                assert_eq!(ft.k, 4);
                assert_eq!(ft.hosts_per_edge, 3);
            }
            other => panic!("expected fat-tree, got {other:?}"),
        }
    }

    #[test]
    fn fabric_parser_rejects_malformed_and_invalid_fabrics() {
        for bad in [
            "mesh",         // unknown fabric
            "fat-tree",     // missing parameters
            "fat-tree:k=3", // odd k
            "fat-tree:k=0", // k < 2
            "fat-tree:k=4,hosts=0",
            "fat-tree:k=abc",
            "fat-tree:k=4,ports=8", // unknown key
            "fat-tree:k",           // no '='
        ] {
            assert!(try_fabric(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn cc_parser_accepts_profiles_and_rejects_unknowns() {
        use diablo_stack::profile::CongestionControl;
        assert_eq!(try_cc("reno").unwrap(), CongestionControl::Reno);
        assert_eq!(try_cc("dctcp").unwrap(), CongestionControl::Dctcp);
        assert!(try_cc("cubic").is_err());
        assert!(try_cc("").is_err());
    }

    #[test]
    fn sim_workers_flag_pins_engine_workers() {
        let args = |v: &[&str]| Args::from_vec(v.iter().map(|s| s.to_string()).collect());
        assert_eq!(
            try_parallel_mode(&args(&["--parallel", "4", "--sim-workers", "2"])).unwrap(),
            diablo_core::RunMode::parallel_with_workers(4, 2)
        );
        assert_eq!(
            try_parallel_mode(&args(&["--parallel", "4"])).unwrap(),
            diablo_core::RunMode::parallel(4)
        );
        // Contradictory combinations are errors, not silent fallbacks.
        assert!(try_parallel_mode(&args(&["--sim-workers", "2"])).is_err());
        assert!(try_parallel_mode(&args(&["--parallel", "4", "--sim-workers", "0"])).is_err());
    }
}
