//! FPGA resource vectors and device descriptions.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// A bundle of FPGA resources: LUTs, registers, 36-kbit BRAMs and
/// LUTRAM-configured LUTs (the four columns of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Logic LUTs.
    pub lut: u64,
    /// Flip-flops.
    pub reg: u64,
    /// Block RAMs (36 kbit equivalents).
    pub bram: u64,
    /// LUTs configured as distributed RAM.
    pub lutram: u64,
}

impl Resources {
    /// The zero bundle.
    pub const ZERO: Resources = Resources { lut: 0, reg: 0, bram: 0, lutram: 0 };

    /// Creates a bundle.
    pub const fn new(lut: u64, reg: u64, bram: u64, lutram: u64) -> Self {
        Resources { lut, reg, bram, lutram }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, o: Resources) -> Resources {
        Resources {
            lut: self.lut + o.lut,
            reg: self.reg + o.reg,
            bram: self.bram + o.bram,
            lutram: self.lutram + o.lutram,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, n: u64) -> Resources {
        Resources {
            lut: self.lut * n,
            reg: self.reg * n,
            bram: self.bram * n,
            lutram: self.lutram * n,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUT / {} FF / {} BRAM / {} LUTRAM",
            self.lut, self.reg, self.bram, self.lutram
        )
    }
}

/// An FPGA device's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Total logic LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub regs: u64,
    /// Total 36-kbit BRAMs.
    pub bram: u64,
    /// Achievable host clock for DIABLO-style designs (MHz).
    pub clock_mhz: u32,
    /// Fraction of LUTs usable before routing/placement fails; Table 2's
    /// design occupies 95% of slices at 47% raw LUT usage, i.e. packing
    /// efficiency ≈ 0.63 for this design style.
    pub packing_efficiency: f64,
    /// DRAM attached per FPGA (GiB).
    pub dram_gib: u32,
}

impl Device {
    /// The BEE3's Xilinx Virtex-5 LX155T (2007-era, as used by the
    /// prototype).
    pub fn virtex5_lx155t() -> Self {
        Device {
            name: "Virtex-5 LX155T",
            luts: 97_280,
            regs: 97_280,
            bram: 212,
            clock_mhz: 90,
            packing_efficiency: 0.634,
            dram_gib: 16,
        }
    }

    /// A projected 2015 20 nm device (the paper's §5 "new FPGA board using
    /// upcoming 20 nm FPGAs").
    pub fn modern_20nm() -> Self {
        Device {
            name: "20nm UltraScale-class",
            luts: 1_182_000,
            regs: 2_364_000,
            bram: 2_160,
            clock_mhz: 180,
            packing_efficiency: 0.70,
            dram_gib: 64,
        }
    }

    /// `true` when `r` fits on this device (within packing limits).
    pub fn fits(&self, r: Resources) -> bool {
        self.slice_occupancy(r) <= 1.0 && r.reg <= self.regs && r.bram <= self.bram
    }

    /// Estimated fraction of logic slices occupied (LUT + LUTRAM demand
    /// over packable LUTs).
    pub fn slice_occupancy(&self, r: Resources) -> f64 {
        (r.lut + r.lutram) as f64 / (self.luts as f64 * self.packing_efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Resources::new(10, 20, 1, 2);
        let b = a * 3;
        assert_eq!(b, Resources::new(30, 60, 3, 6));
        assert_eq!(a + b, Resources::new(40, 80, 4, 8));
        let total: Resources = [a, b].into_iter().sum();
        assert_eq!(total, Resources::new(40, 80, 4, 8));
        assert_eq!(a.to_string(), "10 LUT / 20 FF / 1 BRAM / 2 LUTRAM");
    }

    #[test]
    fn lx155t_capacity_sanity() {
        let d = Device::virtex5_lx155t();
        assert!(d.fits(Resources::new(45_818, 62_811, 189, 12_739)));
        assert!(!d.fits(Resources::new(97_281, 0, 0, 0)));
        assert!(!d.fits(Resources::new(0, 0, 213, 0)));
    }

    #[test]
    fn paper_design_occupies_95_percent_of_slices() {
        let d = Device::virtex5_lx155t();
        let table2_total = Resources::new(45_818, 62_811, 189, 12_739);
        let occ = d.slice_occupancy(table2_total);
        assert!((0.93..=0.97).contains(&occ), "slice occupancy {occ}");
    }
}
