//! Parametric resource estimates for the FAME model families, calibrated so
//! the prototype's Rack FPGA configuration reproduces Table 2 exactly.
//!
//! Each estimator is affine in its scaling parameter (`base + per_unit * n`):
//! host-multithreaded pipelines share control logic (the base) and replicate
//! per-instance state (the slope), which is how FAME-7 designs actually
//! grow.

use crate::resources::Resources;

/// The Rack FPGA's server-model block: `pipelines` pipelines of
/// `threads` threads (4 x 32 in the prototype).
pub fn server_models(pipelines: u64, threads: u32) -> Resources {
    // Affine calibration hitting Table 2's row at (4, 32):
    //   lut: 305 + 7,035 p ; reg: 363 + 9,275 p ; bram: 24 p ;
    //   lutram: 4 + 1,645 p, with per-thread scaling inside each pipeline.
    let scale = |per32: u64| -> u64 {
        // Per-pipeline cost scales with thread count relative to 32.
        per32 * threads as u64 / 32
    };
    Resources {
        lut: 305 + scale(7_035) * pipelines,
        reg: 363 + scale(9_275) * pipelines,
        bram: scale(24) * pipelines,
        lutram: 4 + scale(1_645) * pipelines,
    }
}

/// The NIC-model block: one NIC model per server pipeline.
pub fn nic_models(count: u64) -> Resources {
    // Calibrated at 4: 9,467/4,785/10/752.
    Resources {
        lut: 267 + 2_300 * count,
        reg: 185 + 1_150 * count,
        bram: 2 + 2 * count,
        lutram: 188 * count,
    }
}

/// The ToR-switch-model block: one rack switch model per simulated rack.
pub fn rack_switch_models(count: u64) -> Resources {
    // Calibrated at 4: 4,511/3,482/52/345.
    Resources {
        lut: 303 + 1_052 * count,
        reg: 294 + 797 * count,
        bram: 13 * count,
        lutram: 1 + 86 * count,
    }
}

/// Shared infrastructure: memory controllers, crossbar, scheduler,
/// transceivers, frontend link, performance counters ("Miscellaneous").
pub fn miscellaneous() -> Resources {
    Resources { lut: 3_395, reg: 16_052, bram: 31, lutram: 5_058 }
}

/// An array/datacenter switch model of the given radix and link rate.
///
/// An earlier publication showed a fully detailed 128-port 10 Gbps
/// high-radix switch model fits on a single LX155T; this estimator is
/// calibrated to that bound.
pub fn big_switch_model(ports: u64, gbps: u64) -> Resources {
    let rate_factor = gbps.max(1).ilog2().max(1) as u64;
    Resources {
        lut: 2_000 + 128 * ports * rate_factor,
        reg: 1_500 + 300 * ports,
        bram: 4 + ports / 2,
        lutram: 40 * ports,
    }
}

/// The complete Rack FPGA design (Table 2's configuration by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackFpgaDesign {
    /// Server pipelines.
    pub pipelines: u64,
    /// Threads per pipeline.
    pub threads: u32,
}

impl Default for RackFpgaDesign {
    fn default() -> Self {
        RackFpgaDesign { pipelines: 4, threads: 32 }
    }
}

impl RackFpgaDesign {
    /// Servers simulated by this design (one thread per pipeline is
    /// reserved for the ToR switch's packet buffers).
    pub fn servers(&self) -> u64 {
        self.pipelines * (self.threads as u64 - 1)
    }

    /// Racks simulated (one ToR model per pipeline).
    pub fn racks(&self) -> u64 {
        self.pipelines
    }

    /// The Table-2 rows: (name, resources).
    pub fn rows(&self) -> Vec<(&'static str, Resources)> {
        vec![
            ("Server Models", server_models(self.pipelines, self.threads)),
            ("NIC Models", nic_models(self.pipelines)),
            ("Rack Switch Models", rack_switch_models(self.pipelines)),
            ("Miscellaneous", miscellaneous()),
        ]
    }

    /// Total resources.
    pub fn total(&self) -> Resources {
        self.rows().into_iter().map(|(_, r)| r).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_reproduce_exactly() {
        let d = RackFpgaDesign::default();
        let rows = d.rows();
        assert_eq!(rows[0].1, Resources::new(28_445, 37_463, 96, 6_584), "server models");
        assert_eq!(rows[1].1, Resources::new(9_467, 4_785, 10, 752), "NIC models");
        assert_eq!(rows[2].1, Resources::new(4_511, 3_482, 52, 345), "rack switch models");
        assert_eq!(rows[3].1, Resources::new(3_395, 16_052, 31, 5_058), "miscellaneous");
        // Note: the paper's printed Register total (62,811) exceeds its
        // column sum (61,782) by 1,029; we report the true sum.
        assert_eq!(d.total(), Resources::new(45_818, 61_782, 189, 12_739), "total");
    }

    #[test]
    fn prototype_simulates_124_servers_in_4_racks() {
        let d = RackFpgaDesign::default();
        assert_eq!(d.servers(), 124);
        assert_eq!(d.racks(), 4);
    }

    #[test]
    fn scaling_threads_scales_resources() {
        let half = server_models(4, 16);
        let full = server_models(4, 32);
        assert!(half.lut < full.lut);
        assert!(half.bram < full.bram);
        // Doubling pipelines roughly doubles (affine) costs.
        let eight = server_models(8, 32);
        assert!(eight.lut > full.lut * 19 / 10);
    }

    #[test]
    fn big_switch_fits_single_fpga() {
        let d = crate::resources::Device::virtex5_lx155t();
        let sw = big_switch_model(128, 10);
        assert!(d.fits(sw), "128-port 10G switch must fit: {sw}");
        // A 17-port array switch model is far smaller.
        assert!(big_switch_model(17, 1).lut < sw.lut / 3);
    }
}
