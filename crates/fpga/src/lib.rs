//! # diablo-fpga — FPGA resource and cost modeling
//!
//! The hardware-planning half of DIABLO that we cannot physically build:
//! parametric resource estimators for the FAME model families (calibrated
//! to reproduce the paper's Table 2 exactly), device capacity checks for
//! the BEE3's Virtex-5 LX155T and a projected 20 nm part, and system-level
//! planning — boards, DRAM, power, dollars — including the paper's
//! comparison against the CAPEX/OPEX of the real warehouse-scale array.

#![warn(missing_docs)]

pub mod models;
pub mod resources;
pub mod system;

pub use models::{big_switch_model, RackFpgaDesign};
pub use resources::{Device, Resources};
pub use system::{Generation, RealArrayCost, SystemPlan};
