//! Whole-system planning: how many FPGAs and boards a target WSC array
//! needs, what it costs, and how that compares to building the real thing
//! (§1 and §3.4 of the paper).

use crate::models::RackFpgaDesign;
use crate::resources::Device;

/// Hardware generation the plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Generation {
    /// 2007-era BEE3 boards (four Virtex-5 LX155T each) — the prototype.
    Bee3,
    /// The projected 2015 single-FPGA 20 nm board (§5).
    Modern2015,
}

/// A complete deployment plan for simulating a target array.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemPlan {
    /// Hardware generation.
    pub generation: Generation,
    /// Target simulated servers.
    pub target_servers: u64,
    /// Simulated ToR switches.
    pub target_racks: u64,
    /// Array + datacenter switch models required.
    pub big_switches: u64,
    /// FPGAs running the Rack-FPGA configuration.
    pub rack_fpgas: u64,
    /// FPGAs running the Switch-FPGA configuration.
    pub switch_fpgas: u64,
    /// Boards (4 FPGAs per BEE3; 1 per modern board).
    pub boards: u64,
    /// Total DRAM (GiB).
    pub dram_gib: u64,
    /// Capital cost in dollars.
    pub cost_usd: u64,
    /// Active power (watts).
    pub power_w: u64,
}

/// Per-generation planning parameters.
#[derive(Debug, Clone)]
struct GenParams {
    device: Device,
    fpgas_per_board: u64,
    board_cost_usd: u64,
    servers_per_fpga: u64,
    racks_per_fpga: u64,
    /// Array/DC switch models per Switch FPGA (SERDES-limited, not
    /// logic-limited: the prototype dedicates FPGAs to connectivity).
    switches_per_fpga: u64,
    /// The datacenter switch gets its own board (its transceivers fan in
    /// to every array switch) — true for the BEE3 prototype.
    dedicated_dc_board: bool,
    board_power_w: u64,
    /// Front-end infrastructure (control servers, GbE switch).
    frontend_cost_usd: u64,
}

fn params(generation: Generation) -> GenParams {
    match generation {
        Generation::Bee3 => GenParams {
            device: Device::virtex5_lx155t(),
            fpgas_per_board: 4,
            board_cost_usd: 15_000,
            servers_per_fpga: RackFpgaDesign::default().servers(),
            racks_per_fpga: RackFpgaDesign::default().racks(),
            switches_per_fpga: 1,
            dedicated_dc_board: true,
            board_power_w: 167, // 9 boards ~ 1.5 kW
            frontend_cost_usd: 11_000,
        },
        Generation::Modern2015 => GenParams {
            device: Device::modern_20nm(),
            fpgas_per_board: 1,
            board_cost_usd: 4_200, // incl. DRAM, amortized board NRE
            servers_per_fpga: 1_000,
            racks_per_fpga: 33,
            switches_per_fpga: 32,
            dedicated_dc_board: false,
            board_power_w: 90,
            frontend_cost_usd: 15_000,
        },
    }
}

impl SystemPlan {
    /// Plans a system simulating `servers` servers in racks of
    /// `servers_per_rack`, with `racks_per_array` racks per array switch.
    ///
    /// # Panics
    ///
    /// Panics if `servers` or `servers_per_rack` is zero.
    pub fn for_target(
        generation: Generation,
        servers: u64,
        servers_per_rack: u64,
        racks_per_array: u64,
    ) -> SystemPlan {
        assert!(servers > 0 && servers_per_rack > 0, "target must be nonempty");
        let p = params(generation);
        let racks = servers.div_ceil(servers_per_rack);
        let arrays = racks.div_ceil(racks_per_array.max(1));
        let big_switches = arrays + u64::from(arrays > 1);
        let rack_fpgas = servers.div_ceil(p.servers_per_fpga).max(racks.div_ceil(p.racks_per_fpga));
        let has_dc = arrays > 1;
        let dc_boards = u64::from(has_dc && p.dedicated_dc_board);
        let boardable_switches = if p.dedicated_dc_board { arrays } else { big_switches };
        let rack_boards = rack_fpgas.div_ceil(p.fpgas_per_board);
        let switch_boards =
            boardable_switches.div_ceil(p.switches_per_fpga * p.fpgas_per_board) + dc_boards;
        let boards = rack_boards + switch_boards;
        let switch_fpgas = switch_boards * p.fpgas_per_board;
        SystemPlan {
            generation,
            target_servers: servers,
            target_racks: racks,
            big_switches,
            rack_fpgas,
            switch_fpgas,
            boards,
            // Every FPGA on every board carries its DIMMs (the prototype:
            // 9 boards x 4 FPGAs x 16 GiB = 576 GiB).
            dram_gib: boards * p.fpgas_per_board * p.device.dram_gib as u64,
            cost_usd: boards * p.board_cost_usd + p.frontend_cost_usd,
            power_w: boards * p.board_power_w,
        }
    }

    /// The paper's 3,000-node prototype (2,976 servers, 96 racks, 6 array
    /// switches + 1 datacenter switch on 9 BEE3 boards).
    pub fn prototype_3000() -> SystemPlan {
        SystemPlan::for_target(Generation::Bee3, 2_976, 31, 16)
    }

    /// The paper's §3.4 projection: a 32,000-node system on 32 modern
    /// FPGAs for about $150K.
    pub fn projected_32000() -> SystemPlan {
        SystemPlan::for_target(Generation::Modern2015, 32_000, 31, 16)
    }
}

/// Cost of building and running the *real* target array (the paper's
/// comparison: "$36M in CAPEX and $800K in OPEX/month" for an array).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealArrayCost {
    /// Capital per server, including its share of network and facility
    /// (calibrated to the paper's $36M for a ~3,000-server array).
    pub capex_per_server_usd: f64,
    /// Monthly operating cost per server (power, cooling, staff;
    /// calibrated to $800K/month for the same array).
    pub opex_per_server_month_usd: f64,
}

impl Default for RealArrayCost {
    fn default() -> Self {
        RealArrayCost { capex_per_server_usd: 12_000.0, opex_per_server_month_usd: 268.0 }
    }
}

impl RealArrayCost {
    /// CAPEX of a real array of `servers` servers.
    pub fn capex(&self, servers: u64) -> f64 {
        self.capex_per_server_usd * servers as f64
    }

    /// Monthly OPEX of a real array of `servers` servers.
    pub fn opex_per_month(&self, servers: u64) -> f64 {
        self.opex_per_server_month_usd * servers as f64
    }

    /// How many times cheaper the simulator's CAPEX is than the real
    /// array's.
    pub fn capex_ratio(&self, plan: &SystemPlan) -> f64 {
        self.capex(plan.target_servers) / plan.cost_usd as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_shape() {
        let p = SystemPlan::prototype_3000();
        assert_eq!(p.target_servers, 2_976);
        assert_eq!(p.target_racks, 96);
        assert_eq!(p.big_switches, 7, "6 array switches + 1 DC switch");
        assert_eq!(p.rack_fpgas, 24, "six boards of rack FPGAs");
        // Nine boards (6 rack + 2 array + 1 DC), ~$146K, ~1.5 kW, 576 GiB:
        // the paper's prototype exactly.
        assert_eq!(p.boards, 9, "boards");
        assert_eq!(p.dram_gib, 576, "DRAM GiB");
        assert!((135_000..=155_000).contains(&p.cost_usd), "cost = {}", p.cost_usd);
        assert!((1_400..=1_600).contains(&p.power_w), "power = {}", p.power_w);
    }

    #[test]
    fn projection_hits_150k_for_32000_nodes() {
        let p = SystemPlan::projected_32000();
        assert_eq!(p.target_servers, 32_000);
        assert!((30..=36).contains(&p.boards), "boards = {}", p.boards);
        assert!((130_000..=165_000).contains(&p.cost_usd), "cost = {}", p.cost_usd);
    }

    #[test]
    fn real_array_costs_orders_of_magnitude_more() {
        let real = RealArrayCost::default();
        let plan = SystemPlan::prototype_3000();
        let capex = real.capex(plan.target_servers);
        assert!((30e6..=40e6).contains(&capex), "CAPEX {capex}");
        let opex = real.opex_per_month(plan.target_servers);
        assert!((700e3..=900e3).contains(&opex), "OPEX {opex}");
        let ratio = real.capex_ratio(&plan);
        assert!(ratio > 100.0, "simulator should be >100x cheaper, got {ratio}");
    }

    #[test]
    fn bigger_targets_need_more_boards() {
        let small = SystemPlan::for_target(Generation::Bee3, 496, 31, 16);
        let big = SystemPlan::for_target(Generation::Bee3, 11_904, 31, 16);
        assert!(big.boards > small.boards * 10);
        assert_eq!(big.target_racks, 384);
    }
}
