#!/usr/bin/env bash
# Regenerates every paper table and figure. CSVs land in results/.
# Defaults are laptop-scale; pass-through args (e.g. --requests 30000
# --full) scale any individual binary toward the paper's parameters.
set -euo pipefail
cd "$(dirname "$0")/.."

BINS=(
  tab01_survey
  fig02_testbeds
  tab02_fpga_resources
  cost_model
  fig06a_incast_1g
  fig06b_incast_10g
  fig08_memcached_rack
  fig09_version_cdf_120
  fig10_hop_pmf
  fig11_scale_tail
  fig12_switch_latency
  fig13_tcp_vs_udp
  fig14_kernel
  fig15_memcached_version
  perf_scaling
  ablation_quantum
  ablation_buffers
)

cargo build --release -p diablo-bench
for bin in "${BINS[@]}"; do
  echo
  cargo run --release -q -p diablo-bench --bin "$bin" -- "$@"
done

# The sensitivity grid: one warmed checkpoint fanned over worker
# threads by the sweep orchestrator (resumable — delete the .progress
# file under results/ to start over). Replaces the old ad-hoc
# per-configuration wsc_sim loop.
echo
cargo run --release -q -p diablo-bench --bin wsc_sim -- sweep \
  --spec scenarios/paper_grid.sweep

echo
echo "All regenerators complete. CSVs: results/"
