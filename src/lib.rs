//! # DIABLO — Datacenter-In-A-Box at LOw cost
//!
//! A software reproduction of the warehouse-scale computer network
//! simulator from *"DIABLO: A Warehouse-Scale Computer Network Simulator
//! using FPGAs"* (ASPLOS 2015). DIABLO models a WSC **array** — thousands
//! of servers running a full software stack, connected by top-of-rack,
//! array and datacenter switches — with deterministic, repeatable timing.
//! Where the original accelerates its models on FPGAs, this crate runs the
//! same abstraction level (FAME-style split functional/timing models) on a
//! deterministic discrete-event engine, optionally partition-parallel
//! across host threads with bit-identical results.
//!
//! ## Crate map
//!
//! | Module | Crate | What it holds |
//! |---|---|---|
//! | [`engine`] | `diablo-engine` | Deterministic DES core, time, RNG, stats |
//! | [`net`] | `diablo-net` | Frames, links, switch models, WSC topology |
//! | [`nic`] | `diablo-nic` | NIC model: rings, DMA, interrupt mitigation |
//! | [`stack`] | `diablo-stack` | Modeled OS: scheduler, syscalls, TCP/UDP |
//! | [`node`] | `diablo-node` | The simulated server component |
//! | [`apps`] | `diablo-apps` | Incast benchmark, memcached model, workloads |
//! | [`baseline`] | `diablo-baseline` | ns2-like network-only simulator, analytics |
//! | [`fpga`] | `diablo-fpga` | FPGA resource/cost model (Table 2, §3.4) |
//! | [`core`] | `diablo-core` | Cluster builder, experiment harness, reports |
//!
//! ## Quickstart
//!
//! ```
//! use diablo::prelude::*;
//!
//! // A 2-rack array with the paper's GbE switches.
//! let spec = ClusterSpec::gbe(TopologyConfig {
//!     racks: 2,
//!     servers_per_rack: 4,
//!     racks_per_array: 2,
//! });
//! let mut host = SimHost::new(RunMode::Serial);
//! let cluster = Cluster::build(&mut host, &spec);
//! assert_eq!(cluster.nodes.len(), 8);
//!
//! // Put an echo server on one node and a client on another rack.
//! cluster.spawn(&mut host, NodeAddr(0), Box::new(TcpEchoServer::new(7)));
//! cluster.spawn(
//!     &mut host,
//!     NodeAddr(5),
//!     Box::new(TcpEchoClient::new(SockAddr::new(NodeAddr(0), 7), 10, 1000)),
//! );
//! host.run_until(SimTime::from_secs(5))?;
//! let client: &TcpEchoClient =
//!     cluster.process(&host, NodeAddr(5), Tid(0)).expect("client state");
//! assert_eq!(client.rtts.len(), 10);
//! # Ok::<(), diablo::engine::error::EngineError>(())
//! ```

pub use diablo_apps as apps;
pub use diablo_baseline as baseline;
pub use diablo_core as core;
pub use diablo_engine as engine;
pub use diablo_fpga as fpga;
pub use diablo_net as net;
pub use diablo_nic as nic;
pub use diablo_node as node;
pub use diablo_stack as stack;

/// The most commonly used types across all crates.
pub mod prelude {
    pub use diablo_apps::echo::{TcpEchoClient, TcpEchoServer, UdpEchoServer, UdpPingClient};
    pub use diablo_apps::incast::{IncastEpollClient, IncastMaster, IncastServer, IncastWorker};
    pub use diablo_apps::memcached::{McClient, McClientConfig, McDispatcher, McVersion, McWorker};
    pub use diablo_apps::partition_aggregate::{
        PaFrontend, PaFrontendConfig, PaLeaf, PaLeafConfig,
    };
    pub use diablo_apps::workload::EtcWorkload;
    pub use diablo_core::cluster::{
        Cluster, ClusterSpec, FabricKind, RunMode, SimHost, SwitchTemplate,
    };
    pub use diablo_core::experiment::{
        ExperimentBase, ExperimentError, ExperimentHarness, RunEnvelope, Workload,
    };
    pub use diablo_core::experiments::{
        run_incast, run_memcached, run_partition_aggregate, IncastClientKind, IncastConfig,
        McExperimentConfig, PaExperimentConfig,
    };
    pub use diablo_core::observe::DropAccounting;
    pub use diablo_engine::prelude::*;
    pub use diablo_net::topology::{FatTreeConfig, HopClass, Topology, TopologyConfig};
    pub use diablo_net::{NodeAddr, SockAddr};
    pub use diablo_node::ServerNode;
    pub use diablo_stack::process::{Proto, Tid};
    pub use diablo_stack::profile::{CongestionControl, KernelProfile};
}
