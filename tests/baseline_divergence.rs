//! The paper's methodological thesis: network-only simulation (ns2-style)
//! and full-stack simulation agree when the network dominates, and diverge
//! when endpoint software matters.

use diablo::baseline::analytic::{incast_goodput_analytic, mmk_sojourn_time};
use diablo::baseline::run_baseline_incast;
use diablo::core::{run_incast, IncastConfig};
use diablo::net::link::LinkParams;
use diablo::net::switch::SwitchConfig;

#[test]
fn both_simulators_collapse_on_shallow_buffers() {
    // Where the switch dominates, the simulators agree qualitatively:
    // both collapse relative to their own uncongested throughput.
    let mut full_small = IncastConfig::fig6a(2);
    full_small.iterations = 3;
    let f2 = run_incast(&full_small).goodput_mbps;
    let mut full_big = IncastConfig::fig6a(12);
    full_big.iterations = 3;
    let f12 = run_incast(&full_big).goodput_mbps;

    let b2 = run_baseline_incast(
        2,
        3,
        256 * 1024,
        SwitchConfig::shallow_gbe("t", 16),
        LinkParams::gbe(500),
    );
    let b12 = run_baseline_incast(
        12,
        3,
        256 * 1024,
        SwitchConfig::shallow_gbe("t", 16),
        LinkParams::gbe(500),
    );
    assert!(f12 < f2, "full stack must collapse");
    assert!(b12 < b2, "baseline must collapse");
}

#[test]
fn only_the_full_stack_sees_cpu_speed() {
    // The ns2-like baseline has no CPU at all: its results cannot depend
    // on server speed. The full stack's do (Fig. 6(b)'s whole point).
    let mk = |ghz: u64| {
        let mut cfg = IncastConfig::fig6b(2, ghz, diablo::core::IncastClientKind::Epoll);
        cfg.iterations = 3;
        cfg.switch = Some(diablo::core::SwitchTemplate {
            buffer: diablo::net::switch::BufferConfig::PerPort { bytes_per_port: 256 * 1024 },
            ..diablo::core::SwitchTemplate::ten_gbe_fast()
        });
        run_incast(&cfg).goodput_mbps
    };
    let f4 = mk(4);
    let f2 = mk(2);
    assert!(
        (f4 - f2).abs() / f4 > 0.2,
        "full stack must be CPU-sensitive: 4GHz={f4:.0} 2GHz={f2:.0}"
    );
}

#[test]
fn analytic_models_bound_the_simulation() {
    // The analytic incast estimate captures the collapse threshold but
    // none of the endpoint detail; it should agree in direction.
    let g = |n: usize| {
        incast_goodput_analytic(1e9, 256.0 * 1024.0, 4096.0, n, 10.0 * 1460.0, 0.2, 200e-6)
    };
    assert!(g(1) > 1e8, "one sender keeps most of the link");
    assert!(g(16) < g(1) / 10.0, "collapse at fan-in");

    // Erlang-C sanity against the memcached saturation curve's direction.
    let light = mmk_sojourn_time(10_000.0, 40_000.0, 4);
    let heavy = mmk_sojourn_time(120_000.0, 40_000.0, 4);
    assert!(heavy > light * 1.5, "queueing must grow with load");
}
