//! The observability layer, end to end: whole-cluster metric scrapes are
//! identical under serial and partition-parallel execution, frame
//! conservation (drop accounting) balances per direction, and the flight
//! recorder merges kernel, NIC and switch events into one time-ordered
//! stream.

use diablo::prelude::*;
use std::collections::BTreeSet;

#[test]
fn incast_scrape_is_identical_across_executors_and_conserves_frames() {
    let mut cfg = IncastConfig::fig6a(7);
    cfg.iterations = 2;
    cfg.racks = 4; // spread servers so the 4-partition cut is real
    let mut par = cfg.clone();
    par.mode = RunMode::parallel(4);

    let rs = run_incast(&cfg);
    let rp = run_incast(&par);

    // Drop accounting balances, per direction, on both executors.
    for r in [&rs, &rp] {
        let c = &r.conservation;
        assert!(c.is_balanced(), "{:?}", c.violations);
        assert_eq!(c.node_tx_frames, c.switch_rx_from_nodes);
        assert_eq!(c.switch_tx_to_nodes, c.node_rx_frames + c.node_rx_ring_drops);
        assert_eq!(c.inter_switch_tx, c.inter_switch_rx);
        assert_eq!(c.frames_in_transit, 0);
        assert!(c.node_tx_frames > 0, "incast must move frames");
    }

    // The scrapes themselves — and therefore every exporter — are
    // byte-identical between serial and 4-partition runs.
    assert_eq!(
        rs.metrics.to_json(),
        rp.metrics.to_json(),
        "serial vs 4-partition scrape must serialize byte-identically"
    );
    assert_eq!(rs.metrics.to_csv(), rp.metrics.to_csv());

    // Aggregate queries over the scrape agree with the audit.
    assert_eq!(rs.metrics.sum_counters("*.nic.tx_frames"), rs.conservation.node_tx_frames);
    assert_eq!(rs.metrics.sum_counters("*.nic.tx_loss_drops"), rs.conservation.node_tx_loss);
}

#[test]
fn periodic_sampling_builds_identical_series_across_executors() {
    let mut cfg = IncastConfig::fig6a(3);
    cfg.iterations = 2;
    cfg.racks = 2;
    cfg.sample_every = Some(SimDuration::from_millis(50));
    let mut par = cfg.clone();
    par.mode = RunMode::parallel(2);

    let rs = run_incast(&cfg);
    let rp = run_incast(&par);
    let ss = rs.series.expect("serial series");
    let sp = rp.series.expect("parallel series");
    assert!(ss.names().next().is_some(), "sampling must record at least one metric");
    assert_eq!(ss.to_csv(), sp.to_csv(), "interval samples must match across executors");
}

/// A node crash mid-series resets that node's counters to zero, so the
/// raw sample values genuinely decrease across the reboot — but the
/// rate-shaped view must saturate at zero rather than report a negative
/// per-interval rate.
#[test]
fn counter_resets_across_node_crash_yield_no_negative_deltas() {
    use diablo::core::FaultPlan;
    let mut cfg = McExperimentConfig::mini(1, 40);
    cfg.sample_every = Some(SimDuration::from_millis(1));
    cfg.faults = Some(FaultPlan::parse("5ms node-crash node1 reboot=1ms").expect("valid plan"));
    let r = run_memcached(&cfg);
    assert!(r.failure.crash_lost > 0, "the crash must catch work in flight: {:?}", r.failure);
    let series = r.series.expect("sampled series");

    // The reset must actually be visible in the raw samples — otherwise
    // this test would pass vacuously.
    let resets = series
        .names()
        .filter(|name| series.series(name).expect("known name").windows(2).any(|w| w[1].1 < w[0].1))
        .count();
    assert!(resets > 0, "the crash must reset at least one counter series");

    // ...and the per-interval rate view must clamp those resets to zero.
    for name in series.names() {
        for (at, d) in series.deltas(name).expect("known name") {
            assert!(d >= 0.0, "negative per-interval rate for {name} at {at}: {d}");
        }
    }
}

#[test]
fn flight_recorder_merges_cross_layer_events() {
    let spec =
        ClusterSpec::gbe(TopologyConfig { racks: 1, servers_per_rack: 2, racks_per_array: 1 });
    let (mut host, cluster) = Cluster::instantiate(&spec, RunMode::Serial);
    cluster.enable_flight_recorders(&mut host, 4096);
    cluster.spawn(&mut host, NodeAddr(0), Box::new(TcpEchoServer::new(7)));
    cluster.spawn(
        &mut host,
        NodeAddr(1),
        Box::new(TcpEchoClient::new(SockAddr::new(NodeAddr(0), 7), 5, 1_000)),
    );
    host.run_until(SimTime::from_secs(2)).expect("run");

    let events = cluster.flight_recording(&host, 50_000);
    assert!(!events.is_empty());
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "stream must be time-ordered");

    // One stream spans the kernel, NIC and switch layers.
    let kinds: BTreeSet<&str> = events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains("syscall"), "kernel events missing: {kinds:?}");
    assert!(kinds.contains("nic_dma_tx"), "NIC events missing: {kinds:?}");
    assert!(kinds.contains("sw_enqueue"), "switch events missing: {kinds:?}");

    // Sources carry the hierarchical component names.
    assert!(events.iter().any(|e| e.source.starts_with("rack0.server")));
    assert!(events.iter().any(|e| e.source == "rack0.tor"));
}
