//! DIABLO's headline methodological property: fully deterministic,
//! repeatable experiments — including bit-identical results between the
//! serial and partition-parallel executors (the software analogue of the
//! paper's multi-FPGA synchronization).
//!
//! The `*_conforms_across_partitionings` tests are the workspace half of
//! the cross-partition conformance contract (the executor half lives in
//! `crates/engine/tests/conformance.rs`): the full incast and memcached
//! experiments must produce identical observable results for every
//! partition count, with the quantum derived from the rack-cut plan.

use diablo::prelude::*;

fn echo_workload(host: &mut SimHost, cluster: &Cluster) {
    cluster.spawn(host, NodeAddr(0), Box::new(TcpEchoServer::new(7)));
    cluster.spawn(host, NodeAddr(1), Box::new(UdpEchoServer::new(9)));
    for rack in 0..cluster.topo.config().racks {
        let base = rack * cluster.topo.config().servers_per_rack;
        cluster.spawn(
            host,
            NodeAddr((base + 2) as u32),
            Box::new(TcpEchoClient::new(SockAddr::new(NodeAddr(0), 7), 15, 2_000)),
        );
        cluster.spawn(
            host,
            NodeAddr((base + 3) as u32),
            Box::new(UdpPingClient::new(SockAddr::new(NodeAddr(1), 9), 15, 500)),
        );
    }
}

fn run_echo(mode: RunMode) -> (u64, Vec<Vec<u64>>) {
    let spec =
        ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 6, racks_per_array: 2 });
    let (mut host, cluster) = Cluster::instantiate(&spec, mode);
    echo_workload(&mut host, &cluster);
    host.run_until(SimTime::from_secs(10)).expect("run failed");
    let mut rtts = Vec::new();
    for rack in 0..4 {
        let tcp_client = NodeAddr((rack * 6 + 2) as u32);
        let c: &TcpEchoClient = cluster.process(&host, tcp_client, Tid(0)).expect("client state");
        assert!(c.done, "client on {tcp_client} unfinished");
        rtts.push(c.rtts.iter().map(|d| d.as_picos()).collect());
    }
    (host.events_processed(), rtts)
}

#[test]
fn serial_runs_replay_bit_identically() {
    let (e1, r1) = run_echo(RunMode::Serial);
    let (e2, r2) = run_echo(RunMode::Serial);
    assert_eq!(e1, e2);
    assert_eq!(r1, r2);
}

#[test]
fn parallel_matches_serial_exactly() {
    let (es, rs) = run_echo(RunMode::Serial);
    for partitions in [1usize, 2, 4, 8] {
        let (ep, rp) = run_echo(RunMode::parallel(partitions));
        assert_eq!(es, ep, "event count diverged at {partitions} partitions");
        assert_eq!(rs, rp, "per-message RTTs diverged at {partitions} partitions");
    }
}

/// The paper-scale contract: a ≥512-node cluster partitioned 4 ways and
/// executed with genuinely concurrent multi-worker rounds must match
/// serial exactly — per-message RTTs and total event count. This is the
/// regime the parallel hot path optimizes for (hundreds of components per
/// worker, batched dispatch engaged), pinned to real threads even on
/// small CI hosts via `RunMode::parallel_with_workers`.
#[test]
fn large_cluster_parallel_multiworker_matches_serial() {
    const RACKS: usize = 86;
    const SPR: usize = 6; // 516 servers >= 512
    let spec = ClusterSpec::gbe(TopologyConfig {
        racks: RACKS,
        servers_per_rack: SPR,
        racks_per_array: 16,
    });
    let run = |mode: RunMode| {
        let (mut host, cluster) = Cluster::instantiate(&spec, mode);
        cluster.spawn(&mut host, NodeAddr(0), Box::new(TcpEchoServer::new(7)));
        cluster.spawn(&mut host, NodeAddr(1), Box::new(UdpEchoServer::new(9)));
        for rack in (0..RACKS).step_by(4) {
            let base = rack * SPR;
            cluster.spawn(
                &mut host,
                NodeAddr((base + 2) as u32),
                Box::new(TcpEchoClient::new(SockAddr::new(NodeAddr(0), 7), 10, 2_000)),
            );
            cluster.spawn(
                &mut host,
                NodeAddr((base + 3) as u32),
                Box::new(UdpPingClient::new(SockAddr::new(NodeAddr(1), 9), 10, 500)),
            );
        }
        host.run_until(SimTime::from_secs(10)).expect("run failed");
        let mut rtts = Vec::new();
        for rack in (0..RACKS).step_by(4) {
            let client = NodeAddr((rack * SPR + 2) as u32);
            let c: &TcpEchoClient = cluster.process(&host, client, Tid(0)).expect("client state");
            assert!(c.done, "client on {client} unfinished");
            rtts.push(c.rtts.iter().map(|d| d.as_picos()).collect::<Vec<_>>());
        }
        (host.events_processed(), rtts)
    };
    let reference = run(RunMode::Serial);
    for workers in [2usize, 4] {
        let got = run(RunMode::parallel_with_workers(4, workers));
        assert_eq!(reference, got, "516-node cluster diverged at 4 partitions / {workers} workers");
    }
}

#[test]
fn incast_conforms_across_partitionings() {
    use diablo::core::{run_incast, IncastConfig};
    let run = |mode: RunMode| {
        let mut cfg = IncastConfig::fig6a(8);
        cfg.iterations = 3;
        cfg.racks = 4;
        cfg.mode = mode;
        let r = run_incast(&cfg);
        (r.goodput_mbps.to_bits(), r.iteration_times, r.switch_drops, r.events)
    };
    let reference = run(RunMode::Serial);
    for partitions in [1usize, 2, 4, 8] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(reference, got, "incast diverged at {partitions} partitions");
    }
}

#[test]
fn memcached_conforms_across_partitionings() {
    use diablo::core::{run_memcached, McExperimentConfig};
    let run = |mode: RunMode| {
        let mut cfg = McExperimentConfig::mini(4, 15);
        cfg.mode = mode;
        let r = run_memcached(&cfg);
        // Note: `final_time` is not compared — the parallel executor's
        // run_until reports the cap even when the queue drains early, which
        // is a clock-reporting difference, not a simulation one. Everything
        // event-derived must be identical.
        (
            r.completed_at,
            r.latency.count(),
            r.latency.quantile(0.5),
            r.latency.quantile(0.99),
            r.served,
            r.udp_retries,
            r.failures,
            r.events,
        )
    };
    let reference = run(RunMode::Serial);
    for partitions in [1usize, 2, 4, 8] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(reference, got, "memcached diverged at {partitions} partitions");
    }
}

/// Fault events travel the same external-event path as everything else,
/// so a scripted link flap must leave the serial and partition-parallel
/// executors bit-identical — including the whole-cluster metric scrape,
/// compared as serialized JSON bytes.
#[test]
fn incast_fault_schedule_conforms_across_partitionings() {
    use diablo::core::{run_incast, FaultPlan, IncastConfig};
    let run = |mode: RunMode| {
        let mut cfg = IncastConfig::fig6a(8);
        cfg.iterations = 3;
        cfg.racks = 4;
        cfg.mode = mode;
        cfg.faults = Some(
            FaultPlan::parse("10ms link-down node1\n510ms link-up node1").expect("valid plan"),
        );
        let r = run_incast(&cfg);
        (r.metrics.to_json(), r.events, r.iteration_times, r.switch_drops)
    };
    let reference = run(RunMode::Serial);
    for partitions in [2usize, 4] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(
            reference.1, got.1,
            "event count diverged under faults at {partitions} partitions"
        );
        assert_eq!(reference, got, "faulted incast diverged at {partitions} partitions");
    }
}

/// Same contract for the memcached workload with the full degradation
/// machinery engaged: request deadlines, reconnect backoff, and a
/// mid-run server-uplink outage.
#[test]
fn memcached_fault_schedule_conforms_across_partitionings() {
    use diablo::core::{run_memcached, FaultPlan, McExperimentConfig};
    let run = |mode: RunMode| {
        let mut cfg = McExperimentConfig::mini(4, 30);
        cfg.proto = diablo::stack::process::Proto::Tcp;
        cfg.request_deadline = Some(SimDuration::from_millis(10));
        cfg.faults =
            Some(FaultPlan::parse("1ms link-down node0\n51ms link-up node0").expect("valid plan"));
        cfg.mode = mode;
        let r = run_memcached(&cfg);
        (r.metrics.to_json(), r.completed_at, r.events, r.failure)
    };
    let reference = run(RunMode::Serial);
    assert!(reference.3.failed > 0, "the outage must be visible in the reference run");
    for partitions in [2usize, 4] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(reference, got, "faulted memcached diverged at {partitions} partitions");
    }
}

/// The partition-aggregate search tier with cluster-wide fan-out: every
/// query crosses the rack cut in both directions, so any divergence in
/// cross-partition delivery shows up as a different metric scrape.
#[test]
fn partition_aggregate_conforms_across_partitionings() {
    use diablo::core::{run_partition_aggregate, PaExperimentConfig};
    let run = |mode: RunMode| {
        let mut cfg = PaExperimentConfig::new(4, 10);
        cfg.cross_rack = true;
        cfg.mode = mode;
        let r = run_partition_aggregate(&cfg);
        (
            r.metrics.to_json(),
            r.events,
            r.queries,
            r.full_aggregates,
            r.deadline_misses,
            r.missing_answers,
            r.served,
            r.completed_at,
        )
    };
    let reference = run(RunMode::Serial);
    assert_eq!(reference.2, 40, "4 front-ends x 10 queries");
    for partitions in [2usize, 4] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(reference.1, got.1, "event count diverged at {partitions} partitions");
        assert_eq!(reference, got, "partition-aggregate diverged at {partitions} partitions");
    }
}

/// Same contract with a scripted leaf-uplink outage: deadline misses must
/// land on exactly the same queries in serial and parallel runs.
#[test]
fn partition_aggregate_fault_schedule_conforms_across_partitionings() {
    use diablo::core::{run_partition_aggregate, FaultPlan, PaExperimentConfig};
    let run = |mode: RunMode| {
        let mut cfg = PaExperimentConfig::new(2, 40);
        cfg.faults =
            Some(FaultPlan::parse("1ms link-down node1\n4ms link-up node1").expect("valid plan"));
        cfg.mode = mode;
        let r = run_partition_aggregate(&cfg);
        (r.metrics.to_json(), r.events, r.deadline_misses, r.missing_answers, r.completed_at)
    };
    let reference = run(RunMode::Serial);
    assert!(reference.2 > 0, "the outage must be visible in the reference run");
    for partitions in [2usize, 4] {
        let got = run(RunMode::parallel(partitions));
        assert_eq!(
            reference, got,
            "faulted partition-aggregate diverged at {partitions} partitions"
        );
    }
}

#[test]
fn memcached_experiment_is_deterministic() {
    use diablo::core::{run_memcached, McExperimentConfig};
    let run = || {
        let cfg = McExperimentConfig::mini(2, 25);
        let r = run_memcached(&cfg);
        (r.latency.count(), r.latency.quantile(0.5), r.latency.quantile(0.99), r.served, r.events)
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_results() {
    use diablo::core::{run_memcached, McExperimentConfig};
    let run = |seed: u64| {
        let mut cfg = McExperimentConfig::mini(2, 25);
        cfg.seed = seed;
        run_memcached(&cfg).events
    };
    assert_ne!(run(1), run(2), "different seeds must explore different schedules");
}

/// The open-loop contract: rate-driven admissions ride ordinary kernel
/// timers, so a memcached run under the bundled diurnal profile — with
/// and without a scripted link flap on top — must be byte-identical
/// (whole-cluster metric scrape, serialized JSON) between serial and
/// 2/4-partition execution, and every SLO/shed/offered count must match.
#[test]
fn open_loop_memcached_conforms_across_partitionings() {
    use diablo::core::{run_memcached, ArrivalSpec, FaultPlan, McExperimentConfig};
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/diurnal.arrv"))
            .expect("bundled diurnal scenario");
    let spec = ArrivalSpec::parse(&text).expect("bundled scenario must parse");
    for flap in [false, true] {
        let run = |mode: RunMode| {
            let mut cfg = McExperimentConfig::mini(2, 0);
            cfg.arrival = Some(spec.clone());
            cfg.slo = Some(SimDuration::from_micros(500));
            cfg.mode = mode;
            if flap {
                cfg.faults = Some(
                    FaultPlan::parse("10ms link-down node1\n30ms link-up node1")
                        .expect("valid plan"),
                );
            }
            let r = run_memcached(&cfg);
            assert!(r.offered > 0, "diurnal profile must admit load");
            assert_eq!(r.offered, r.slo.completed + r.slo.shed, "admission accounting");
            (r.metrics.to_json(), r.offered, r.timed_out, r.slo, r.failure, r.events)
        };
        let reference = run(RunMode::Serial);
        for partitions in [2usize, 4] {
            let got = run(RunMode::parallel(partitions));
            assert_eq!(
                reference, got,
                "open-loop memcached (flap={flap}) diverged at {partitions} partitions"
            );
        }
    }
}

/// Same contract for open-loop partition-aggregate under the diurnal
/// profile: frontends pace fan-outs from the arrival schedule, and the
/// serial and partitioned executors must agree byte for byte.
#[test]
fn open_loop_partition_aggregate_conforms_across_partitionings() {
    use diablo::core::{run_partition_aggregate, ArrivalSpec, FaultPlan, PaExperimentConfig};
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/diurnal.arrv"))
            .expect("bundled diurnal scenario");
    let spec = ArrivalSpec::parse(&text).expect("bundled scenario must parse");
    for flap in [false, true] {
        let run = |mode: RunMode| {
            let mut cfg = PaExperimentConfig::new(2, 0);
            cfg.arrival = Some(spec.clone());
            cfg.slo = Some(SimDuration::from_micros(800));
            cfg.mode = mode;
            if flap {
                cfg.faults = Some(
                    FaultPlan::parse("10ms link-down node1\n30ms link-up node1")
                        .expect("valid plan"),
                );
            }
            let r = run_partition_aggregate(&cfg);
            assert!(r.offered > 0, "diurnal profile must admit load");
            (r.metrics.to_json(), r.offered, r.queries, r.slo, r.failure, r.events)
        };
        let reference = run(RunMode::Serial);
        for partitions in [2usize, 4] {
            let got = run(RunMode::parallel(partitions));
            assert_eq!(
                reference, got,
                "open-loop partition-aggregate (flap={flap}) diverged at {partitions} partitions"
            );
        }
    }
}

/// ECMP path choice is a pure function of the flow 5-tuple and the
/// switch's fixed seed — never of arrival order, time, or per-packet
/// randomness. Recomputing any (tuple, seed) pair must reproduce the
/// same hash and output port, the port must be in range for the switch's
/// role, and distinct seeds must actually spread flows across uplinks
/// (the point of seeding per switch).
#[test]
fn ecmp_path_choice_is_a_pure_function_of_flow_and_seed() {
    use diablo::net::payload::{AppMessage, IpPacket, UdpDatagram};
    use diablo::net::switch::{ecmp_hash, ClosRole, EcmpConfig, PacketSwitch};

    let k = 4usize;
    let hosts_per_edge = 2usize;
    let packet = |src: u32, dst: u32, sp: u16, dp: u16| {
        IpPacket::udp(
            NodeAddr(src),
            NodeAddr(dst),
            UdpDatagram {
                src_port: sp,
                dst_port: dp,
                msg: AppMessage::new(0, 0, 64, SimTime::ZERO),
            },
        )
    };
    let roles = [ClosRole::Edge { edge: 0 }, ClosRole::Aggregation { pod: 0 }, ClosRole::Core];
    let mut uplink_spread = std::collections::BTreeSet::new();
    for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
        for src in 0..4u32 {
            for dst in 4..8u32 {
                for sp in [1000u16, 1001, 5000] {
                    let p = packet(src, dst, sp, 7);
                    let h = ecmp_hash(seed, src, dst, sp, 7, 17);
                    assert_eq!(h, ecmp_hash(seed, src, dst, sp, 7, 17), "hash must be pure");
                    for role in roles {
                        let ecmp = EcmpConfig { k, hosts_per_edge, role };
                        let port = PacketSwitch::ecmp_port(&ecmp, seed, &p);
                        assert_eq!(
                            port,
                            PacketSwitch::ecmp_port(&ecmp, seed, &p),
                            "port choice must be pure (seed={seed} src={src} dst={dst} sp={sp})"
                        );
                        let limit = match role {
                            ClosRole::Edge { .. } => hosts_per_edge + k / 2,
                            ClosRole::Aggregation { .. } | ClosRole::Core => k,
                        };
                        assert!(
                            (port as usize) < limit,
                            "{role:?} port {port} out of range (limit {limit})"
                        );
                        if let ClosRole::Edge { .. } = role {
                            // dst 4..8 is always off-edge for edge 0, so
                            // this is an uplink choice.
                            assert!((port as usize) >= hosts_per_edge);
                            uplink_spread.insert((seed, port));
                        }
                    }
                }
            }
        }
        // One seed must spread distinct flows over more than one uplink.
        assert!(
            uplink_spread.iter().filter(|(s, _)| *s == seed).count() > 1,
            "seed {seed} pinned every flow to one uplink"
        );
    }
    // And different seeds must not all agree on every flow's uplink.
    let per_seed: Vec<Vec<u16>> = [0u64, 1, 0xDEAD_BEEF, u64::MAX]
        .iter()
        .map(|&seed| {
            let ecmp = EcmpConfig { k, hosts_per_edge, role: ClosRole::Edge { edge: 0 } };
            (0..16u32)
                .map(|f| PacketSwitch::ecmp_port(&ecmp, seed, &packet(0, 4, 1000 + f as u16, 7)))
                .collect()
        })
        .collect();
    assert!(
        per_seed.windows(2).any(|w| w[0] != w[1]),
        "per-switch seeding must change path assignments"
    );
}

/// The fat-tree fabric under ECMP keeps the executor-conformance
/// contract: the same incast model run serial, 2-partition and
/// 4-partition must scrape byte-identical metrics — flow-consistent
/// hashing means path choice cannot depend on partition scheduling.
#[test]
fn fat_tree_incast_conforms_across_partitionings() {
    use diablo::core::{run_incast, IncastConfig};
    use diablo::stack::profile::CongestionControl;
    for cc in [CongestionControl::Reno, CongestionControl::Dctcp] {
        let run = |mode: RunMode| {
            let mut cfg = IncastConfig::fig6a(6).on_fat_tree(FatTreeConfig::new(4));
            cfg.cc = cc;
            cfg.iterations = 2;
            cfg.mode = mode;
            let r = run_incast(&cfg);
            (r.metrics.to_json(), r.goodput_mbps.to_bits(), r.iteration_times, r.events)
        };
        let reference = run(RunMode::Serial);
        for partitions in [2usize, 4] {
            let got = run(RunMode::parallel(partitions));
            assert_eq!(
                reference.1, got.1,
                "fat-tree incast ({cc:?}) goodput diverged at {partitions} partitions"
            );
            assert_eq!(
                reference, got,
                "fat-tree incast ({cc:?}) diverged at {partitions} partitions"
            );
        }
    }
}
