//! DIABLO's headline methodological property: fully deterministic,
//! repeatable experiments — including bit-identical results between the
//! serial and partition-parallel executors (the software analogue of the
//! paper's multi-FPGA synchronization).

use diablo::prelude::*;

fn echo_workload(host: &mut SimHost, cluster: &Cluster) {
    cluster.spawn(host, NodeAddr(0), Box::new(TcpEchoServer::new(7)));
    cluster.spawn(host, NodeAddr(1), Box::new(UdpEchoServer::new(9)));
    for rack in 0..cluster.topo.config().racks {
        let base = rack * cluster.topo.config().servers_per_rack;
        cluster.spawn(
            host,
            NodeAddr((base + 2) as u32),
            Box::new(TcpEchoClient::new(SockAddr::new(NodeAddr(0), 7), 15, 2_000)),
        );
        cluster.spawn(
            host,
            NodeAddr((base + 3) as u32),
            Box::new(UdpPingClient::new(SockAddr::new(NodeAddr(1), 9), 15, 500)),
        );
    }
}

fn run_echo(mode: RunMode) -> (u64, Vec<Vec<u64>>) {
    let spec =
        ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 6, racks_per_array: 2 });
    let mut host = SimHost::new(mode);
    let cluster = Cluster::build(&mut host, &spec);
    echo_workload(&mut host, &cluster);
    host.run_until(SimTime::from_secs(10)).expect("run failed");
    let mut rtts = Vec::new();
    for rack in 0..4 {
        let tcp_client = NodeAddr((rack * 6 + 2) as u32);
        let c: &TcpEchoClient = cluster.process(&host, tcp_client, Tid(0)).expect("client state");
        assert!(c.done, "client on {tcp_client} unfinished");
        rtts.push(c.rtts.iter().map(|d| d.as_picos()).collect());
    }
    (host.events_processed(), rtts)
}

#[test]
fn serial_runs_replay_bit_identically() {
    let (e1, r1) = run_echo(RunMode::Serial);
    let (e2, r2) = run_echo(RunMode::Serial);
    assert_eq!(e1, e2);
    assert_eq!(r1, r2);
}

#[test]
fn parallel_matches_serial_exactly() {
    let spec =
        ClusterSpec::gbe(TopologyConfig { racks: 4, servers_per_rack: 6, racks_per_array: 2 });
    let (es, rs) = run_echo(RunMode::Serial);
    for partitions in [2usize, 4] {
        let (ep, rp) = run_echo(RunMode::Parallel { partitions, quantum: spec.safe_quantum() });
        assert_eq!(es, ep, "event count diverged at {partitions} partitions");
        assert_eq!(rs, rp, "per-message RTTs diverged at {partitions} partitions");
    }
}

#[test]
fn memcached_experiment_is_deterministic() {
    use diablo::core::{run_memcached, McExperimentConfig};
    let run = || {
        let cfg = McExperimentConfig::mini(2, 25);
        let r = run_memcached(&cfg);
        (r.latency.count(), r.latency.quantile(0.5), r.latency.quantile(0.99), r.served, r.events)
    };
    assert_eq!(run(), run());
}

#[test]
fn seeds_change_results() {
    use diablo::core::{run_memcached, McExperimentConfig};
    let run = |seed: u64| {
        let mut cfg = McExperimentConfig::mini(2, 25);
        cfg.seed = seed;
        run_memcached(&cfg).events
    };
    assert_ne!(run(1), run(2), "different seeds must explore different schedules");
}
