//! Failure injection: lossy physical links (the prototype observed soft
//! errors "a few times per day" and protected its links, §3.4). In the
//! target network, loss is visible to the transports: TCP must recover
//! transparently; UDP applications see timeouts and retries.

use diablo::net::link::{LinkParams, PortPeer};
use diablo::net::switch::{BufferConfig, PacketSwitch, SwitchConfig};
use diablo::prelude::*;
use diablo::stack::kernel::NodeConfig;
use std::sync::Arc;

/// Two nodes under one ToR with per-direction frame loss:
/// `switch_to_node_loss` applies to the ToR's node-facing egress links,
/// `node_to_switch_loss` to the NIC uplinks (the direction the original
/// one-sided model silently never dropped).
fn rack_with_loss(
    node_to_switch_loss: f64,
    switch_to_node_loss: f64,
) -> (SimHost, Vec<diablo::engine::event::ComponentId>) {
    let topo = Arc::new(
        Topology::new(TopologyConfig { racks: 1, servers_per_rack: 2, racks_per_array: 1 })
            .expect("topology"),
    );
    let mut host = SimHost::new(RunMode::Serial);
    let uplink_params = LinkParams::gbe(500).with_loss_rate(node_to_switch_loss);
    let downlink_params = LinkParams::gbe(500).with_loss_rate(switch_to_node_loss);
    let mut cfg = SwitchConfig::shallow_gbe("tor", 3);
    cfg.buffer = BufferConfig::PerPort { bytes_per_port: 256 * 1024 };
    let mut sw = PacketSwitch::new(cfg, DetRng::new(11));
    let mut nodes = Vec::new();
    // Build switch first so ids are predictable.
    let sw_placeholder = {
        use diablo_engine::parallel::ComponentHost;
        // Temporarily wire after adding nodes.
        sw.connect_port(
            0,
            PortPeer {
                component: diablo_engine::event::ComponentId(1),
                port: PortNo(0),
                params: downlink_params,
            },
        );
        sw.connect_port(
            1,
            PortPeer {
                component: diablo_engine::event::ComponentId(2),
                port: PortNo(0),
                params: downlink_params,
            },
        );
        host.add_in_partition(0, Box::new(sw))
    };
    for i in 0..2u32 {
        use diablo_engine::parallel::ComponentHost;
        let uplink =
            PortPeer { component: sw_placeholder, port: PortNo(i as u16), params: uplink_params };
        let node = ServerNode::new(
            NodeConfig::new(NodeAddr(i), KernelProfile::linux_2_6_39()),
            uplink,
            topo.clone(),
        );
        nodes.push(host.add_in_partition(0, Box::new(node)));
    }
    (host, nodes)
}

/// Two nodes under one ToR whose node-facing links drop frames at `loss`.
fn lossy_rack(loss: f64) -> (SimHost, Vec<diablo::engine::event::ComponentId>) {
    rack_with_loss(0.0, loss)
}

#[test]
fn tcp_survives_lossy_links() {
    let (mut host, nodes) = lossy_rack(0.02); // 2% frame loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        30,
        2_000,
    )));
    host.run_until(SimTime::from_secs(120)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<TcpEchoClient>(Tid(0)).expect("client");
    assert!(c.done, "TCP must deliver everything despite loss");
    assert_eq!(c.rtts.len(), 30);
    // Loss manifests as retransmission-inflated RTTs somewhere.
    let max = c.rtts.iter().max().expect("nonempty");
    assert!(
        *max > SimDuration::from_millis(100),
        "some exchange should have eaten an RTO, max {max}"
    );
}

#[test]
fn udp_applications_see_the_loss() {
    let (mut host, nodes) = lossy_rack(0.05); // 5% frame loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(UdpEchoServer::new(9)));
    // The stop-and-wait ping client has no retry: it will hang on the
    // first lost datagram; bound the run and check partial progress.
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(UdpPingClient::new(
        SockAddr::new(NodeAddr(0), 9),
        1_000,
        200,
    )));
    host.run_until(SimTime::from_secs(2)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<UdpPingClient>(Tid(0)).expect("client");
    assert!(
        !c.done && !c.rtts.is_empty(),
        "UDP must make progress then stall on loss (got {} echoes, done={})",
        c.rtts.len(),
        c.done
    );
}

/// The headline regression for the one-sided loss model: loss configured
/// on the *node uplink* (node→switch direction) must actually drop
/// frames. Before the NIC egress draw existed, only switch egress
/// consulted `loss_rate`, so a lossy uplink behaved like a clean one and
/// this test's stall-and-account assertions fail.
#[test]
fn udp_applications_see_node_to_switch_loss() {
    let (mut host, nodes) = rack_with_loss(0.05, 0.0); // 5% uplink loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(UdpEchoServer::new(9)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(UdpPingClient::new(
        SockAddr::new(NodeAddr(0), 9),
        1_000,
        200,
    )));
    host.run_until(SimTime::from_secs(2)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<UdpPingClient>(Tid(0)).expect("client");
    assert!(
        !c.done && !c.rtts.is_empty(),
        "UDP must make progress then stall on uplink loss (got {} echoes, done={})",
        c.rtts.len(),
        c.done
    );
    // The loss is drawn (and accounted) at the NICs, not the switch.
    let nic_losses: u64 = nodes
        .iter()
        .map(|&id| {
            host.component::<ServerNode>(id).expect("node").kernel().nic_stats().tx_loss_drops.get()
        })
        .sum();
    assert!(nic_losses > 0, "NICs must record uplink loss draws");
    let sw = host.component::<PacketSwitch>(diablo::engine::event::ComponentId(0)).expect("switch");
    assert_eq!(sw.stats().drops_error.get(), 0, "switch egress links are clean");
}

/// TCP recovers from uplink (node→switch) loss just as it does from
/// downlink loss: retransmissions, not silent completion.
#[test]
fn tcp_survives_lossy_uplinks() {
    let (mut host, nodes) = rack_with_loss(0.02, 0.0); // 2% uplink loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        30,
        2_000,
    )));
    host.run_until(SimTime::from_secs(120)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<TcpEchoClient>(Tid(0)).expect("client");
    assert!(c.done, "TCP must deliver everything despite uplink loss");
    assert_eq!(c.rtts.len(), 30);
    let max = c.rtts.iter().max().expect("nonempty");
    assert!(
        *max > SimDuration::from_millis(100),
        "some exchange should have eaten an RTO, max {max}"
    );
}

// ====================================================================
// Scripted fault schedules (FaultPlan)
// ====================================================================

/// The bundled link-flap scenario against the incast benchmark: node 1's
/// uplink (a storage server) dies for 500 ms mid-run and comes back. TCP
/// rides out the outage on retransmission timeouts — every iteration
/// still completes — and the conservation books stay balanced with the
/// fault-drop columns populated.
#[test]
fn incast_recovers_from_scripted_link_flap() {
    use diablo::core::{run_incast, FaultPlan, IncastConfig};
    let plan =
        FaultPlan::parse("10ms  link-down node1\n510ms link-up   node1\n").expect("valid plan");
    let mut cfg = IncastConfig::fig6a(4);
    cfg.iterations = 5;
    cfg.faults = Some(plan);
    let r = run_incast(&cfg);
    assert_eq!(r.iteration_times.len(), 5, "all iterations must complete despite the flap");
    let rtos: u64 = (0..5)
        .map(|s| r.metrics.counter(&format!("rack0.server{s}.kernel.tcp.rtos")).unwrap_or(0))
        .sum();
    let retransmits: u64 = (0..5)
        .map(|s| r.metrics.counter(&format!("rack0.server{s}.kernel.tcp.retransmits")).unwrap_or(0))
        .sum();
    assert!(rtos > 0, "the outage must cost at least one retransmission timeout");
    assert!(retransmits > 0, "recovery must happen through TCP retransmission");
    let fault_drops = r.conservation.node_tx_carrier_drops
        + r.conservation.node_rx_carrier_drops
        + r.conservation.switch_fault_drops;
    assert!(fault_drops > 0, "the downed link must actually have eaten frames");
    assert!(r.conservation.is_balanced(), "conservation: {:?}", r.conservation.violations);
}

/// memcached TCP clients with a per-request deadline ride out a 50 ms
/// server-uplink outage by timing out, reconnecting with exponential
/// backoff, and re-issuing the interrupted request — visible as a nonzero
/// recovered count in the aggregated [`FailureStats`] report.
#[test]
fn memcached_tcp_clients_reconnect_through_server_outage() {
    use diablo::core::{run_memcached, FaultPlan, McExperimentConfig};
    let plan =
        FaultPlan::parse("2ms  link-down node0\n52ms link-up   node0\n").expect("valid plan");
    let mut cfg = McExperimentConfig::mini(2, 40);
    cfg.proto = diablo::stack::process::Proto::Tcp;
    cfg.request_deadline = Some(SimDuration::from_millis(10));
    cfg.faults = Some(plan);
    let r = run_memcached(&cfg);
    // 2 racks x 5 clients x 40 requests, every one accounted (completed
    // or given up).
    assert_eq!(r.latency.count(), 400);
    assert!(r.failure.failed > 0, "requests in flight during the outage must fail");
    assert!(r.failure.reconnects > 0, "clients must re-establish broken connections");
    assert!(r.failure.recovered > 0, "failed requests must recover after link-up: {:?}", r.failure);
    assert!(r.failure.recovery_time > SimDuration::ZERO);
    assert!(r.conservation.is_balanced(), "conservation: {:?}", r.conservation.violations);
}

/// The epoll incast client's deadline path: with node 1 dark for 500 ms,
/// the client's `epoll_wait` deadline expires, it reconnects (SYNs
/// retransmit until link-up) and re-requests the interrupted fragment.
#[test]
fn incast_epoll_client_deadline_recovers_from_flap() {
    use diablo::core::{run_incast, FaultPlan, IncastClientKind, IncastConfig};
    let plan =
        FaultPlan::parse("10ms  link-down node1\n510ms link-up   node1\n").expect("valid plan");
    let mut cfg = IncastConfig::fig6a(4);
    cfg.client = IncastClientKind::Epoll;
    cfg.iterations = 3;
    cfg.faults = Some(plan);
    cfg.request_deadline = Some(SimDuration::from_millis(250));
    let r = run_incast(&cfg);
    assert_eq!(r.iteration_times.len(), 3);
    assert!(r.failure.failed > 0, "the deadline must fire during the outage");
    assert!(r.failure.recovered > 0, "the re-requested fragment must complete: {:?}", r.failure);
    assert!(r.conservation.is_balanced(), "conservation: {:?}", r.conservation.violations);
}

#[test]
fn clean_links_have_no_drops() {
    let (mut host, nodes) = lossy_rack(0.0);
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        20,
        1_000,
    )));
    host.run_until(SimTime::from_secs(10)).expect("run");
    let sw_id = diablo_engine::event::ComponentId(0);
    let sw = host.component::<PacketSwitch>(sw_id).expect("switch");
    assert_eq!(sw.stats().drops_error.get(), 0);
    assert_eq!(sw.stats().drops_buffer.get(), 0);
}

/// `FailureStats` splits "the node died with the request in flight"
/// (`crash_lost`) from "the request ran out of retries" (`gave_up`): a
/// crash-lost request says nothing about server health and must not be
/// double-counted as a timeout. A clean mid-run client crash must produce
/// only crash losses.
#[test]
fn client_crash_losses_are_not_give_ups() {
    use diablo::core::{run_memcached, FaultPlan, McExperimentConfig};
    // Closed loop: node1 is a client (mini puts the server on node0);
    // crash it while its current op is outstanding, reboot it, finish.
    let mut cfg = McExperimentConfig::mini(1, 40);
    cfg.faults = Some(FaultPlan::parse("1ms node-crash node1 reboot=1ms").expect("valid plan"));
    let r = run_memcached(&cfg);
    assert!(r.failure.crash_lost > 0, "the crash must catch a request in flight: {:?}", r.failure);
    assert_eq!(r.failure.gave_up, 0, "no retry exhaustion on a healthy network: {:?}", r.failure);

    // Open loop: the whole in-flight window dies with the node, and each
    // lost slot is also an unanswered admission in the SLO books — but
    // still not a give-up.
    let mut cfg = McExperimentConfig::mini(1, 0);
    cfg.arrival = Some(
        diablo::core::ArrivalSpec::poisson(20_000.0, SimDuration::from_millis(10))
            .expect("valid spec"),
    );
    cfg.slo = Some(SimDuration::from_micros(500));
    cfg.faults = Some(FaultPlan::parse("2ms node-crash node1 reboot=2ms").expect("valid plan"));
    let r = run_memcached(&cfg);
    assert!(r.failure.crash_lost > 0, "the crash must wipe the window: {:?}", r.failure);
    assert_eq!(r.failure.gave_up, 0, "crash losses must not count as give-ups: {:?}", r.failure);
    assert_eq!(
        r.offered,
        r.slo.completed + r.slo.shed,
        "crash-lost slots must stay in the admission books"
    );
}
