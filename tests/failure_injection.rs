//! Failure injection: lossy physical links (the prototype observed soft
//! errors "a few times per day" and protected its links, §3.4). In the
//! target network, loss is visible to the transports: TCP must recover
//! transparently; UDP applications see timeouts and retries.

use diablo::net::link::{LinkParams, PortPeer};
use diablo::net::switch::{BufferConfig, PacketSwitch, SwitchConfig};
use diablo::prelude::*;
use diablo::stack::kernel::NodeConfig;
use std::sync::Arc;

/// Two nodes under one ToR with per-direction frame loss:
/// `switch_to_node_loss` applies to the ToR's node-facing egress links,
/// `node_to_switch_loss` to the NIC uplinks (the direction the original
/// one-sided model silently never dropped).
fn rack_with_loss(
    node_to_switch_loss: f64,
    switch_to_node_loss: f64,
) -> (SimHost, Vec<diablo::engine::event::ComponentId>) {
    let topo = Arc::new(
        Topology::new(TopologyConfig { racks: 1, servers_per_rack: 2, racks_per_array: 1 })
            .expect("topology"),
    );
    let mut host = SimHost::new(RunMode::Serial);
    let uplink_params = LinkParams::gbe(500).with_loss_rate(node_to_switch_loss);
    let downlink_params = LinkParams::gbe(500).with_loss_rate(switch_to_node_loss);
    let mut cfg = SwitchConfig::shallow_gbe("tor", 3);
    cfg.buffer = BufferConfig::PerPort { bytes_per_port: 256 * 1024 };
    let mut sw = PacketSwitch::new(cfg, DetRng::new(11));
    let mut nodes = Vec::new();
    // Build switch first so ids are predictable.
    let sw_placeholder = {
        use diablo_engine::parallel::ComponentHost;
        // Temporarily wire after adding nodes.
        sw.connect_port(
            0,
            PortPeer {
                component: diablo_engine::event::ComponentId(1),
                port: PortNo(0),
                params: downlink_params,
            },
        );
        sw.connect_port(
            1,
            PortPeer {
                component: diablo_engine::event::ComponentId(2),
                port: PortNo(0),
                params: downlink_params,
            },
        );
        host.add_in_partition(0, Box::new(sw))
    };
    for i in 0..2u32 {
        use diablo_engine::parallel::ComponentHost;
        let uplink =
            PortPeer { component: sw_placeholder, port: PortNo(i as u16), params: uplink_params };
        let node = ServerNode::new(
            NodeConfig::new(NodeAddr(i), KernelProfile::linux_2_6_39()),
            uplink,
            topo.clone(),
        );
        nodes.push(host.add_in_partition(0, Box::new(node)));
    }
    (host, nodes)
}

/// Two nodes under one ToR whose node-facing links drop frames at `loss`.
fn lossy_rack(loss: f64) -> (SimHost, Vec<diablo::engine::event::ComponentId>) {
    rack_with_loss(0.0, loss)
}

#[test]
fn tcp_survives_lossy_links() {
    let (mut host, nodes) = lossy_rack(0.02); // 2% frame loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        30,
        2_000,
    )));
    host.run_until(SimTime::from_secs(120)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<TcpEchoClient>(Tid(0)).expect("client");
    assert!(c.done, "TCP must deliver everything despite loss");
    assert_eq!(c.rtts.len(), 30);
    // Loss manifests as retransmission-inflated RTTs somewhere.
    let max = c.rtts.iter().max().expect("nonempty");
    assert!(
        *max > SimDuration::from_millis(100),
        "some exchange should have eaten an RTO, max {max}"
    );
}

#[test]
fn udp_applications_see_the_loss() {
    let (mut host, nodes) = lossy_rack(0.05); // 5% frame loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(UdpEchoServer::new(9)));
    // The stop-and-wait ping client has no retry: it will hang on the
    // first lost datagram; bound the run and check partial progress.
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(UdpPingClient::new(
        SockAddr::new(NodeAddr(0), 9),
        1_000,
        200,
    )));
    host.run_until(SimTime::from_secs(2)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<UdpPingClient>(Tid(0)).expect("client");
    assert!(
        !c.done && !c.rtts.is_empty(),
        "UDP must make progress then stall on loss (got {} echoes, done={})",
        c.rtts.len(),
        c.done
    );
}

/// The headline regression for the one-sided loss model: loss configured
/// on the *node uplink* (node→switch direction) must actually drop
/// frames. Before the NIC egress draw existed, only switch egress
/// consulted `loss_rate`, so a lossy uplink behaved like a clean one and
/// this test's stall-and-account assertions fail.
#[test]
fn udp_applications_see_node_to_switch_loss() {
    let (mut host, nodes) = rack_with_loss(0.05, 0.0); // 5% uplink loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(UdpEchoServer::new(9)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(UdpPingClient::new(
        SockAddr::new(NodeAddr(0), 9),
        1_000,
        200,
    )));
    host.run_until(SimTime::from_secs(2)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<UdpPingClient>(Tid(0)).expect("client");
    assert!(
        !c.done && !c.rtts.is_empty(),
        "UDP must make progress then stall on uplink loss (got {} echoes, done={})",
        c.rtts.len(),
        c.done
    );
    // The loss is drawn (and accounted) at the NICs, not the switch.
    let nic_losses: u64 = nodes
        .iter()
        .map(|&id| {
            host.component::<ServerNode>(id).expect("node").kernel().nic_stats().tx_loss_drops.get()
        })
        .sum();
    assert!(nic_losses > 0, "NICs must record uplink loss draws");
    let sw = host.component::<PacketSwitch>(diablo::engine::event::ComponentId(0)).expect("switch");
    assert_eq!(sw.stats().drops_error.get(), 0, "switch egress links are clean");
}

/// TCP recovers from uplink (node→switch) loss just as it does from
/// downlink loss: retransmissions, not silent completion.
#[test]
fn tcp_survives_lossy_uplinks() {
    let (mut host, nodes) = rack_with_loss(0.02, 0.0); // 2% uplink loss
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        30,
        2_000,
    )));
    host.run_until(SimTime::from_secs(120)).expect("run");
    let k = host.component::<ServerNode>(nodes[1]).expect("node").kernel();
    let c = k.process::<TcpEchoClient>(Tid(0)).expect("client");
    assert!(c.done, "TCP must deliver everything despite uplink loss");
    assert_eq!(c.rtts.len(), 30);
    let max = c.rtts.iter().max().expect("nonempty");
    assert!(
        *max > SimDuration::from_millis(100),
        "some exchange should have eaten an RTO, max {max}"
    );
}

#[test]
fn clean_links_have_no_drops() {
    let (mut host, nodes) = lossy_rack(0.0);
    host.component_mut::<ServerNode>(nodes[0])
        .expect("node")
        .spawn(Box::new(TcpEchoServer::new(7)));
    host.component_mut::<ServerNode>(nodes[1]).expect("node").spawn(Box::new(TcpEchoClient::new(
        SockAddr::new(NodeAddr(0), 7),
        20,
        1_000,
    )));
    host.run_until(SimTime::from_secs(10)).expect("run");
    let sw_id = diablo_engine::event::ComponentId(0);
    let sw = host.component::<PacketSwitch>(sw_id).expect("switch");
    assert_eq!(sw.stats().drops_error.get(), 0);
    assert_eq!(sw.stats().drops_buffer.get(), 0);
}
