//! End-to-end checks that the paper's qualitative phenomena reproduce:
//! incast collapse, buffer ablation, the latency long tail, hop-class
//! ordering, and the software-dominates-hardware findings.

use diablo::core::{run_incast, run_memcached, IncastConfig, McExperimentConfig, SwitchTemplate};
use diablo::net::switch::BufferConfig;
use diablo::prelude::*;

#[test]
fn incast_collapse_and_buffer_ablation() {
    // Shallow buffers collapse; deep buffers do not (Fig. 6a + §3.3's
    // configurable-buffer claim).
    let mut shallow = IncastConfig::fig6a(8);
    shallow.iterations = 3;
    let g_shallow = run_incast(&shallow).goodput_mbps;

    let mut deep = IncastConfig::fig6a(8);
    deep.iterations = 3;
    deep.switch = Some(SwitchTemplate {
        buffer: BufferConfig::PerPort { bytes_per_port: 1024 * 1024 },
        ..SwitchTemplate::gbe_shallow()
    });
    let g_deep = run_incast(&deep).goodput_mbps;

    assert!(g_shallow < 50.0, "shallow buffers must collapse, got {g_shallow:.1} Mbps");
    assert!(g_deep > 500.0, "deep buffers must sustain goodput, got {g_deep:.1} Mbps");
}

#[test]
fn incast_collapse_survives_partition_parallel_execution() {
    // The phenomenon must not depend on the executor: the same shallow
    // buffers collapse when the cluster is spread over four rack-cut
    // partitions with the quantum derived from the partition plan.
    let mut cfg = IncastConfig::fig6a(8);
    cfg.iterations = 3;
    cfg.racks = 4;
    cfg.mode = RunMode::parallel(4);
    let r = run_incast(&cfg);
    assert!(r.goodput_mbps < 50.0, "collapse expected in parallel, got {:.1} Mbps", r.goodput_mbps);
    let exec = r.exec.expect("parallel runs report an execution breakdown");
    assert_eq!(exec.partitions.len(), 4, "one stats row per partition");
    assert!(exec.events() > 0, "execution report must account for events");
}

#[test]
fn slower_cpu_cannot_reach_10g_line_rate() {
    // Figure 6(b)'s plateau: at 10 Gbps the 2 GHz CPU is the bottleneck.
    let mk = |ghz: u64| {
        let mut cfg = IncastConfig::fig6b(2, ghz, diablo::core::IncastClientKind::Epoll);
        cfg.iterations = 4;
        cfg.switch = Some(SwitchTemplate {
            buffer: BufferConfig::PerPort { bytes_per_port: 256 * 1024 },
            ..SwitchTemplate::ten_gbe_fast()
        });
        run_incast(&cfg).goodput_mbps
    };
    let fast = mk(4);
    let slow = mk(2);
    assert!(slow < fast * 0.7, "2 GHz ({slow:.0}) must trail 4 GHz ({fast:.0})");
    assert!(slow < 4_000.0, "2 GHz cannot approach line rate, got {slow:.0} Mbps");
}

#[test]
fn memcached_has_a_long_tail_and_hop_ordering() {
    let mut cfg = McExperimentConfig::mini(20, 80);
    cfg.proto = Proto::Udp;
    let r = run_memcached(&cfg);
    let p50 = r.latency.quantile(0.5);
    let max = r.latency.max();
    assert!(max > p50 * 20, "long tail expected: p50={p50}ns max={max}ns");
    // Hop classes: local p50 <= 1-hop p50 <= 2-hop p50.
    let p50s: Vec<u64> = r.by_class.iter().map(|h| h.quantile(0.5)).collect();
    assert!(r.by_class[0].count() > 0 && r.by_class[2].count() > 0);
    assert!(p50s[0] <= p50s[1], "local must beat 1-hop: {p50s:?}");
    assert!(p50s[1] <= p50s[2], "1-hop must beat 2-hop: {p50s:?}");
    // Cross-array traffic dominates (random server selection).
    assert!(r.by_class[2].count() > r.by_class[0].count());
}

#[test]
fn newer_kernel_improves_latency() {
    let run = |kernel: KernelProfile| {
        let mut cfg = McExperimentConfig::mini(4, 60);
        cfg.kernel = kernel;
        cfg.ten_gig = true;
        let r = run_memcached(&cfg);
        r.latency.quantile(0.5)
    };
    let old = run(KernelProfile::linux_2_6_39());
    let new = run(KernelProfile::linux_3_5_7());
    assert!(new < old, "3.5.7 median ({new}ns) must beat 2.6.39 ({old}ns)");
}

#[test]
fn network_upgrade_helps_less_than_2x() {
    // §4.2: "the improvement is no more than 2x — the full OS networking
    // stack dominates the request latency."
    let run = |ten_gig: bool| {
        let mut cfg = McExperimentConfig::mini(8, 80);
        cfg.ten_gig = ten_gig;
        let r = run_memcached(&cfg);
        r.latency.quantile(0.5)
    };
    let g1 = run(false);
    let g10 = run(true);
    assert!(g10 < g1, "10G must improve the median");
    let ratio = g1 as f64 / g10 as f64;
    assert!(
        ratio < 3.0,
        "10x hardware must NOT give 10x latency (got {ratio:.2}x): software dominates"
    );
}
