//! End-to-end checks that the paper's qualitative phenomena reproduce:
//! incast collapse, buffer ablation, the latency long tail, hop-class
//! ordering, and the software-dominates-hardware findings.

use diablo::core::{run_incast, run_memcached, IncastConfig, McExperimentConfig, SwitchTemplate};
use diablo::net::switch::BufferConfig;
use diablo::prelude::*;

#[test]
fn incast_collapse_and_buffer_ablation() {
    // Shallow buffers collapse; deep buffers do not (Fig. 6a + §3.3's
    // configurable-buffer claim).
    let mut shallow = IncastConfig::fig6a(8);
    shallow.iterations = 3;
    let g_shallow = run_incast(&shallow).goodput_mbps;

    let mut deep = IncastConfig::fig6a(8);
    deep.iterations = 3;
    deep.switch = Some(SwitchTemplate {
        buffer: BufferConfig::PerPort { bytes_per_port: 1024 * 1024 },
        ..SwitchTemplate::gbe_shallow()
    });
    let g_deep = run_incast(&deep).goodput_mbps;

    assert!(g_shallow < 50.0, "shallow buffers must collapse, got {g_shallow:.1} Mbps");
    assert!(g_deep > 500.0, "deep buffers must sustain goodput, got {g_deep:.1} Mbps");
}

#[test]
fn incast_collapse_survives_partition_parallel_execution() {
    // The phenomenon must not depend on the executor: the same shallow
    // buffers collapse when the cluster is spread over four rack-cut
    // partitions with the quantum derived from the partition plan.
    let mut cfg = IncastConfig::fig6a(8);
    cfg.iterations = 3;
    cfg.racks = 4;
    cfg.mode = RunMode::parallel(4);
    let r = run_incast(&cfg);
    assert!(r.goodput_mbps < 50.0, "collapse expected in parallel, got {:.1} Mbps", r.goodput_mbps);
    let exec = r.exec.expect("parallel runs report an execution breakdown");
    assert_eq!(exec.partitions.len(), 4, "one stats row per partition");
    assert!(exec.events() > 0, "execution report must account for events");
}

#[test]
fn slower_cpu_cannot_reach_10g_line_rate() {
    // Figure 6(b)'s plateau: at 10 Gbps the 2 GHz CPU is the bottleneck.
    let mk = |ghz: u64| {
        let mut cfg = IncastConfig::fig6b(2, ghz, diablo::core::IncastClientKind::Epoll);
        cfg.iterations = 4;
        cfg.switch = Some(SwitchTemplate {
            buffer: BufferConfig::PerPort { bytes_per_port: 256 * 1024 },
            ..SwitchTemplate::ten_gbe_fast()
        });
        run_incast(&cfg).goodput_mbps
    };
    let fast = mk(4);
    let slow = mk(2);
    assert!(slow < fast * 0.7, "2 GHz ({slow:.0}) must trail 4 GHz ({fast:.0})");
    assert!(slow < 4_000.0, "2 GHz cannot approach line rate, got {slow:.0} Mbps");
}

#[test]
fn memcached_has_a_long_tail_and_hop_ordering() {
    let mut cfg = McExperimentConfig::mini(20, 80);
    cfg.proto = Proto::Udp;
    let r = run_memcached(&cfg);
    let p50 = r.latency.quantile(0.5);
    let max = r.latency.max();
    assert!(max > p50 * 20, "long tail expected: p50={p50}ns max={max}ns");
    // Hop classes: local p50 <= 1-hop p50 <= 2-hop p50.
    let p50s: Vec<u64> = r.by_class.iter().map(|h| h.quantile(0.5)).collect();
    assert!(r.by_class[0].count() > 0 && r.by_class[2].count() > 0);
    assert!(p50s[0] <= p50s[1], "local must beat 1-hop: {p50s:?}");
    assert!(p50s[1] <= p50s[2], "1-hop must beat 2-hop: {p50s:?}");
    // Cross-array traffic dominates (random server selection).
    assert!(r.by_class[2].count() > r.by_class[0].count());
}

#[test]
fn newer_kernel_improves_latency() {
    let run = |kernel: KernelProfile| {
        let mut cfg = McExperimentConfig::mini(4, 60);
        cfg.kernel = kernel;
        cfg.ten_gig = true;
        let r = run_memcached(&cfg);
        r.latency.quantile(0.5)
    };
    let old = run(KernelProfile::linux_2_6_39());
    let new = run(KernelProfile::linux_3_5_7());
    assert!(new < old, "3.5.7 median ({new}ns) must beat 2.6.39 ({old}ns)");
}

#[test]
fn network_upgrade_helps_less_than_2x() {
    // §4.2: "the improvement is no more than 2x — the full OS networking
    // stack dominates the request latency."
    let run = |ten_gig: bool| {
        let mut cfg = McExperimentConfig::mini(8, 80);
        cfg.ten_gig = ten_gig;
        let r = run_memcached(&cfg);
        r.latency.quantile(0.5)
    };
    let g1 = run(false);
    let g10 = run(true);
    assert!(g10 < g1, "10G must improve the median");
    let ratio = g1 as f64 / g10 as f64;
    assert!(
        ratio < 3.0,
        "10x hardware must NOT give 10x latency (got {ratio:.2}x): software dominates"
    );
}

// ---------------------------------------------------------------------------
// Open-loop overload: the regime closed-loop clients can never reach
// ---------------------------------------------------------------------------

/// Offered load held constant regardless of completions: pushing the
/// fleet past its capacity knee must drive the SLO violation fraction up
/// monotonically, and deep overload must also shed admissions (the
/// bounded in-flight window fills). A closed-loop client would throttle
/// itself and hide all of this.
#[test]
fn open_loop_overload_raises_slo_violations_monotonically() {
    use diablo::core::{run_memcached, ArrivalSpec, McExperimentConfig};
    let run = |rate: f64| {
        let mut cfg = McExperimentConfig::mini(1, 0);
        cfg.arrival =
            Some(ArrivalSpec::poisson(rate, SimDuration::from_millis(40)).expect("valid spec"));
        cfg.slo = Some(SimDuration::from_micros(500));
        let r = run_memcached(&cfg);
        assert!(r.offered > 0, "schedule must admit load at {rate} req/s");
        assert_eq!(
            r.offered,
            r.slo.completed + r.slo.shed,
            "every admission must be accounted at {rate} req/s"
        );
        (r.slo.violation_fraction(), r.slo.shed)
    };
    // Per-client rates bracketing the mini-cluster capacity knee
    // (5 clients → 1 server): 0.5x, 1.0x, 1.5x of the saturation point.
    let (f_low, _) = run(15_000.0);
    let (f_sat, _) = run(30_000.0);
    let (f_over, shed_over) = run(45_000.0);
    assert!(
        f_low < f_sat && f_sat < f_over,
        "violation fraction must rise with offered load: {f_low:.3} -> {f_sat:.3} -> {f_over:.3}"
    );
    assert!(f_low < 0.1, "below capacity the SLO must mostly hold, got {f_low:.3}");
    assert!(f_over > 0.8, "1.5x capacity must blow the SLO, got {f_over:.3}");
    assert!(shed_over > 0, "deep overload must fill the in-flight window and shed");
}

/// The bundled diurnal profile end to end: the midday peak saturates the
/// servers (per-interval violations spike, queues grow), and the evening
/// trough lets them drain — the violation rate in the final phase falls
/// back down. Per-interval rates come from `SeriesRecorder::deltas` over
/// the periodic `slo.*` counter scrapes.
#[test]
fn diurnal_overload_recovers_when_load_drops() {
    use diablo::core::{run_memcached, ArrivalSpec, McExperimentConfig};
    let text =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/diurnal.arrv"))
            .expect("bundled diurnal scenario");
    let spec = ArrivalSpec::parse(&text).expect("bundled scenario must parse");
    let mut cfg = McExperimentConfig::mini(1, 0);
    cfg.arrival = Some(spec);
    cfg.slo = Some(SimDuration::from_micros(500));
    cfg.sample_every = Some(SimDuration::from_millis(5));
    let r = run_memcached(&cfg);
    let series = r.series.expect("sample_every must produce a series");

    // Sum the per-client cumulative counters into cluster-wide
    // per-interval deltas, keyed by interval-end timestamp (all clients
    // share the sampling grid).
    let summed = |suffix: &str| -> Vec<(SimTime, f64)> {
        let names: Vec<&str> = series.names().filter(|n| n.ends_with(suffix)).collect();
        assert!(!names.is_empty(), "no series ending in {suffix}");
        let mut total: Vec<(SimTime, f64)> = Vec::new();
        for n in &names {
            let deltas = series.deltas(n).expect("series exists");
            if total.is_empty() {
                total = deltas;
                continue;
            }
            assert_eq!(total.len(), deltas.len(), "clients must share the sampling grid");
            for (acc, (t, d)) in total.iter_mut().zip(deltas) {
                assert_eq!(acc.0, t, "clients must share the sampling grid");
                acc.1 += d;
            }
        }
        total
    };
    let violations = summed("slo.violations");
    let completed = summed("slo.completed");
    assert!(violations.len() >= 10, "60ms profile at 5ms cadence: {}", violations.len());

    // Interval violation fraction over a simulated-time window. The run
    // keeps sampling past the 60ms profile until the harness horizon, so
    // windows are picked by timestamp, not position.
    let frac = |from: SimTime, to: SimTime| -> f64 {
        let in_window = |t: SimTime| t > from && t <= to;
        let v: f64 = violations.iter().filter(|&&(t, _)| in_window(t)).map(|&(_, d)| d).sum();
        let c: f64 = completed.iter().filter(|&&(t, _)| in_window(t)).map(|&(_, d)| d).sum();
        assert!(c > 0.0, "no completions in ({from}, {to}]");
        v / c
    };
    // Deep inside the 40k req/s peak phase (20-40ms), and the tail of the
    // 2k req/s recovery trough (40-60ms) after queues have drained.
    let peak = frac(SimTime::from_millis(25), SimTime::from_millis(40));
    let recovered = frac(SimTime::from_millis(50), SimTime::from_millis(60));
    assert!(peak > 0.5, "the peak phase must violate the SLO heavily, got {peak:.3}");
    assert!(
        recovered < peak / 2.0,
        "the trough must recover: peak {peak:.3} vs recovered {recovered:.3}"
    );
    assert!(recovered < 0.2, "the trough must mostly meet the SLO, got {recovered:.3}");
}

/// DCTCP on the fabric where it was discovered: a 3-tier fat-tree under
/// synchronized reads. At the same incast degree, ECN-driven
/// proportional backoff holds the deepest switch queue below what
/// NewReno fills and keeps every iteration at transfer-time scale, while
/// NewReno overruns the buffer and pays retransmission timeouts —
/// tail latency two orders of magnitude apart on identical hardware.
#[test]
fn dctcp_tames_fat_tree_incast_that_collapses_under_reno() {
    let run = |cc: CongestionControl| {
        let mut cfg = IncastConfig::fig6a(12).on_fat_tree(FatTreeConfig::new(4));
        cfg.cc = cc;
        cfg.iterations = 6;
        // One commodity switch model across all tiers, deep enough that
        // ECN marking (16 KB default) engages well before tail drop.
        cfg.switch = Some(SwitchTemplate {
            buffer: BufferConfig::PerPort { bytes_per_port: 96 * 1024 },
            ..SwitchTemplate::gbe_shallow()
        });
        let r = run_incast(&cfg);
        let max_queue = r
            .metrics
            .iter()
            .filter(|(n, _)| n.ends_with(".max_buffered_bytes"))
            .map(|(_, v)| match v {
                diablo::engine::metrics::MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .max()
            .expect("switch queue metrics");
        let worst = *r.iteration_times.iter().max().expect("iterations ran");
        (max_queue, worst, r.switch_drops, r.metrics.sum_counters("*.ecn_marked"))
    };

    let (reno_q, reno_worst, reno_drops, reno_marked) = run(CongestionControl::Reno);
    let (dctcp_q, dctcp_worst, dctcp_drops, dctcp_marked) = run(CongestionControl::Dctcp);

    // Reno probes until loss: the queue pegs at the buffer and the
    // synchronized losses turn into RTO-scale iterations.
    assert_eq!(reno_marked, 0, "reno must run without ECN marking");
    assert!(reno_drops > 0, "reno must overrun the buffer, got {reno_drops} drops");
    assert!(
        reno_worst > SimDuration::from_millis(100),
        "reno's worst iteration must be RTO-driven, got {reno_worst}"
    );

    // DCTCP reacts to marks before the buffer fills: no drops, a
    // strictly shallower worst-case queue, and transfer-time iterations.
    assert!(dctcp_marked > 0, "dctcp must see ECN marks");
    assert_eq!(dctcp_drops, 0, "dctcp must avoid tail drops, got {dctcp_drops}");
    assert!(
        dctcp_q * 100 < reno_q * 95,
        "dctcp max queue ({dctcp_q} B) must sit below reno's ({reno_q} B)"
    );
    assert!(
        dctcp_worst * 20 < reno_worst,
        "dctcp p99 ({dctcp_worst}) must be well below reno's RTO tail ({reno_worst})"
    );
}
