//! The memcached latency long tail (§4.2): run a scaled-down WSC array
//! serving an ETC-style key-value workload and print the request-latency
//! distribution, split by how many switch levels each request crossed.
//!
//! Run with: `cargo run --release --example memcached_tail`

use diablo::core::{run_memcached, McExperimentConfig};
use diablo::stack::process::Proto;

fn main() {
    // 24 mini-racks over two arrays: local, one-hop and two-hop requests
    // all occur.
    let mut cfg = McExperimentConfig::mini(24, 150);
    cfg.proto = Proto::Udp;
    println!(
        "simulating {} nodes ({} memcached servers, {} clients/rack), UDP...\n",
        cfg.nodes(),
        cfg.racks * cfg.mc_per_rack,
        cfg.servers_per_rack - cfg.mc_per_rack
    );
    let r = run_memcached(&cfg);

    println!(
        "{} requests served; {} UDP retries; {} failures\n",
        r.served, r.udp_retries, r.failures
    );
    println!(
        "{:>7}  {:>9}  {:>10}  {:>11}  {:>12}",
        "class", "requests", "p50 (us)", "p99 (us)", "p99.9 (us)"
    );
    for (name, hist) in ["local", "1-hop", "2-hop"].iter().zip(&r.by_class) {
        if hist.is_empty() {
            continue;
        }
        println!(
            "{:>7}  {:>9}  {:>10.1}  {:>11.1}  {:>12.1}",
            name,
            hist.count(),
            hist.quantile(0.5) as f64 / 1e3,
            hist.quantile(0.99) as f64 / 1e3,
            hist.quantile(0.999) as f64 / 1e3,
        );
    }
    println!(
        "{:>7}  {:>9}  {:>10.1}  {:>11.1}  {:>12.1}",
        "all",
        r.latency.count(),
        r.latency.quantile(0.5) as f64 / 1e3,
        r.latency.quantile(0.99) as f64 / 1e3,
        r.latency.quantile(0.999) as f64 / 1e3,
    );
    println!(
        "\nMost requests finish in tens of microseconds; a small fraction lands \
         orders of magnitude later — the long tail. Requests crossing more \
         switch levels see more variance, and cross-array (2-hop) traffic \
         dominates at scale."
    );
}
