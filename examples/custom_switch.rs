//! Design-space exploration without re-synthesis: every switch parameter
//! is runtime-configurable. This example compares buffer organizations
//! and sizes under incast — the knob commercial hardware does not expose
//! (§2.3's complaint, §3.3's answer).
//!
//! Run with: `cargo run --release --example custom_switch`

use diablo::core::{run_incast, IncastConfig, SwitchTemplate};
use diablo::engine::time::SimDuration;
use diablo::net::switch::{BufferConfig, ForwardingMode};

fn main() {
    let servers = 8;
    println!("8-server incast, 256 KB blocks, 1 Gbps — switch design sweep\n");
    println!("{:<44}  {:>14}", "switch configuration", "goodput (Mbps)");

    let designs: Vec<(&str, SwitchTemplate)> = vec![
        ("4 KB/port, store-and-forward (paper's ToR)", SwitchTemplate::gbe_shallow()),
        (
            "64 KB/port, store-and-forward",
            SwitchTemplate {
                buffer: BufferConfig::PerPort { bytes_per_port: 64 * 1024 },
                ..SwitchTemplate::gbe_shallow()
            },
        ),
        (
            "1 MB shared pool (Asante-style)",
            SwitchTemplate {
                buffer: BufferConfig::Shared { total_bytes: 1024 * 1024 },
                ..SwitchTemplate::gbe_shallow()
            },
        ),
        (
            "64 KB/port, cut-through, 100 ns latency",
            SwitchTemplate {
                buffer: BufferConfig::PerPort { bytes_per_port: 64 * 1024 },
                latency: SimDuration::from_nanos(100),
                forwarding: ForwardingMode::CutThrough,
                ..SwitchTemplate::gbe_shallow()
            },
        ),
    ];

    for (name, template) in designs {
        let mut cfg = IncastConfig::fig6a(servers);
        cfg.iterations = 5;
        cfg.switch = Some(template);
        let r = run_incast(&cfg);
        println!("{name:<44}  {:>14.1}", r.goodput_mbps);
    }
    println!(
        "\nBuffering policy decides whether synchronized reads collapse: \
         shared pools absorb the burst that per-port partitions drop."
    );
}
