//! Partition-parallel execution: the software analogue of DIABLO's
//! multi-FPGA scaling. Racks map to partitions the way the prototype maps
//! them to Rack FPGAs, synchronized once per quantum over a persistent
//! worker pool (threads are spawned on the first `run_until` and reused by
//! every later one) — and the results are bit-identical to a serial run.
//!
//! Run with: `cargo run --release --example parallel_run`

use diablo::core::{run_memcached, McExperimentConfig, RunMode};
use diablo::stack::process::Proto;

fn main() {
    let mut base = McExperimentConfig::mini(8, 60);
    base.proto = Proto::Udp;

    let mut serial = base.clone();
    serial.mode = RunMode::Serial;
    let s = run_memcached(&serial);
    println!(
        "serial:     {:>9} events, {:>7} requests, p99 {:>8.1} us, wall {:.3}s",
        s.events,
        s.latency.count(),
        s.latency.quantile(0.99) as f64 / 1e3,
        s.wall.as_secs_f64()
    );

    // The synchronization quantum is derived from the rack-cut partition
    // plan: the minimum latency any partition-crossing link guarantees
    // (store-and-forward GbE: min-frame serialization + propagation).
    let mut parallel = base;
    parallel.mode = RunMode::parallel(4);
    let p = run_memcached(&parallel);
    println!(
        "parallel x4:{:>9} events, {:>7} requests, p99 {:>8.1} us, wall {:.3}s",
        p.events,
        p.latency.count(),
        p.latency.quantile(0.99) as f64 / 1e3,
        p.wall.as_secs_f64()
    );

    assert_eq!(s.events, p.events, "event counts must match");
    assert_eq!(s.latency.quantile(0.99), p.latency.quantile(0.99), "results must match");
    println!("\nserial and parallel runs are bit-identical — deterministic, repeatable");
    println!("experiments are a core DIABLO property (the FPGA prototype has it too).");
}
