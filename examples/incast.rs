//! TCP Incast in five minutes: sweep the fan-in on a shallow-buffer GbE
//! switch and watch application goodput collapse (the paper's §4.1).
//!
//! Run with: `cargo run --release --example incast`

use diablo::core::{run_incast, IncastConfig};

fn main() {
    println!("fan-in sweep, 256 KB synchronized reads, 1 Gbps, 4 KB/port buffers\n");
    println!("{:>8}  {:>14}  {:>12}", "servers", "goodput (Mbps)", "switch drops");
    for servers in [1usize, 2, 4, 8, 16] {
        let mut cfg = IncastConfig::fig6a(servers);
        cfg.iterations = 5;
        let r = run_incast(&cfg);
        println!("{:>8}  {:>14.1}  {:>12}", servers, r.goodput_mbps, r.switch_drops);
    }
    println!(
        "\nThe collapse is the classic TCP Incast: synchronized responses overflow \
         the switch port buffer, whole windows are lost, and 200 ms retransmission \
         timeouts dominate the block transfer time."
    );
}
