//! Quickstart: build a two-rack simulated array, run a TCP echo exchange
//! across racks, and read back timing and kernel statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use diablo::prelude::*;

fn main() -> Result<(), EngineError> {
    // 1. Describe the target: 2 racks x 8 servers under the paper's GbE
    //    switches (1 us port latency, 4 KB/port buffers).
    let spec =
        ClusterSpec::gbe(TopologyConfig { racks: 2, servers_per_rack: 8, racks_per_array: 2 });

    // 2. Instantiate it on the serial executor.
    let mut host = SimHost::new(RunMode::Serial);
    let cluster = Cluster::build(&mut host, &spec);
    println!(
        "built {} servers, {} switches ({} arrays)",
        cluster.nodes.len(),
        cluster.switches.len(),
        cluster.topo.arrays()
    );

    // 3. Guest software: an echo server on rack 0, a client on rack 1.
    let server_addr = NodeAddr(0);
    let client_addr = NodeAddr(9);
    cluster.spawn(&mut host, server_addr, Box::new(TcpEchoServer::new(7)));
    cluster.spawn(
        &mut host,
        client_addr,
        Box::new(TcpEchoClient::new(SockAddr::new(server_addr, 7), 50, 4_000)),
    );

    // 4. Run (simulated time).
    let stats = host.run_until(SimTime::from_secs(5))?;
    println!("simulated {} in {} events", stats.final_time, stats.events);

    // 5. Inspect results.
    let client: &TcpEchoClient = cluster.process(&host, client_addr, Tid(0)).expect("client state");
    assert!(client.done, "client did not finish");
    let mean_ns: u64 =
        client.rtts.iter().map(|d| d.as_nanos()).sum::<u64>() / client.rtts.len() as u64;
    println!(
        "echoed {} messages of 4000 B cross-rack; mean RTT {:.1} us (min {} max {})",
        client.rtts.len(),
        mean_ns as f64 / 1_000.0,
        client.rtts.iter().min().expect("nonempty"),
        client.rtts.iter().max().expect("nonempty"),
    );

    // The kernel is fully instrumented, like the FPGA prototype's
    // performance counters.
    let k = host.component::<ServerNode>(cluster.node(server_addr)).expect("server node").kernel();
    println!(
        "server kernel: {} syscalls, {} softirq runs, {} wakeups, cpu busy {}",
        k.stats().syscalls,
        k.stats().softirq_runs,
        k.stats().wakeups,
        k.stats().cpu_busy
    );
    Ok(())
}
