//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API the workspace tests use: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer/float range strategies, tuple strategies, and
//! `proptest::collection::vec`. Case generation is fully deterministic
//! (splitmix64 seeded per case); there is **no shrinking** — a failure
//! reports the generated inputs, the case index, and the seed so the case
//! can be replayed with `PROPTEST_SEED`.
//!
//! Environment knobs (same spirit as upstream):
//! * `PROPTEST_CASES` — override the per-test case count.
//! * `PROPTEST_SEED` — override the base seed (decimal or 0x-hex).

use std::ops::{Range, RangeInclusive};

/// Error type carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (Lemire-style reduction; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; this stand-in generates directly.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u64).wrapping_sub(*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (*self.start() as u64 + rng.below(span + 1)) as $t
            }
        }
    )*};
}
int_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy adapter for [`Arbitrary`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy: any representable value.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `element` with a length
    /// drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs `cases` deterministic cases of a property.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
}

const DEFAULT_BASE_SEED: u64 = 0xD1AB_1001_5EED_CAFE;

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

impl TestRunner {
    /// Builds a runner, honoring `PROPTEST_CASES` / `PROPTEST_SEED`.
    pub fn new(mut config: ProptestConfig) -> Self {
        if let Some(c) = env_u64("PROPTEST_CASES") {
            config.cases = c as u32;
        }
        let base_seed = env_u64("PROPTEST_SEED").unwrap_or(DEFAULT_BASE_SEED);
        TestRunner { config, base_seed }
    }

    /// Runs the property once per case. `body` receives a per-case RNG and
    /// returns a human-readable description of the generated inputs plus
    /// the case outcome. Panics (with full context) on the first failure.
    pub fn run<F>(&mut self, test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for case in 0..self.config.cases {
            let seed =
                self.base_seed.wrapping_add((case as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let mut rng = TestRng::new(seed);
            let (desc, outcome) = body(&mut rng);
            if let Err(e) = outcome {
                panic!(
                    "proptest property `{test_name}` failed at case {case}/{} \
                     (base seed {:#x}):\n  inputs: {desc}\n  {e}\n\
                     replay with PROPTEST_SEED={:#x} PROPTEST_CASES=1",
                    self.config.cases, self.base_seed, seed
                );
            }
        }
    }
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {}: {:?} != {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {}: {:?} != {:?}: {}",
            stringify!($a),
            stringify!($b),
            a,
            b,
            format!($($fmt)+)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} != {}: both were {:?}", stringify!($a), stringify!($b), a);
    }};
}

/// Declares property tests. Supports the upstream shape used in this
/// workspace: an optional `#![proptest_config(...)]` inner attribute
/// followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg);
                runner.run(stringify!($name), |rng| {
                    let generated = ( $($crate::Strategy::generate(&($strat), rng),)+ );
                    let desc = format!("{:?}", generated);
                    let ( $($arg,)+ ) = generated;
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    (desc, outcome)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::new(7);
        let mut b = super::TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, v in crate::collection::vec(0u32..5, 1..8)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_floats(pair in (0u32..3, 0u32..3), f in 0.25f64..0.75) {
            prop_assert!(pair.0 < 3 && pair.1 < 3);
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failures_report_inputs() {
        let mut runner = super::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |rng| {
            let x = super::Strategy::generate(&(0u64..10), rng);
            (format!("({x},)"), Err(TestCaseError::fail("nope")))
        });
    }
}
