//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace benches use:
//! `Criterion`, `criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group` + `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`. Measurement is simple wall-clock sampling: each sample
//! times one routine invocation; the report prints min / median / mean over
//! `sample_size` samples. No statistical regression analysis, no plots.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `routine` and prints a report line.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, prefix: name.to_string(), sample_size }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `routine` under `prefix/name`.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.prefix, name), self.sample_size, routine);
        self
    }

    /// Times `routine` with an input value under `prefix/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.prefix, id), self.sample_size, |b| routine(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; this is a no-op).
    pub fn finish(self) {}
}

/// Identifies a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Handed to benchmark routines to time the measured section.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one invocation of `routine` (called once per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: F) {
    // One untimed warm-up batch.
    let mut warmup = Bencher::default();
    routine(&mut warmup);

    let mut b = Bencher::default();
    while b.samples.len() < sample_size {
        let before = b.samples.len();
        routine(&mut b);
        assert!(b.samples.len() > before, "benchmark routine never called Bencher::iter");
    }
    let mut sorted = b.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{name:<44} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups (CLI arguments are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("stub/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // 1 warm-up sample + 3 timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("racks", 4).to_string(), "racks/4");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("inner", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        g.finish();
        assert!(ran);
    }
}
